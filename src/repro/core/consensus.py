"""Bracha's randomized Byzantine consensus (PODC 1984).

One protocol instance decides a single bit among ``n`` processes of which
at most ``t < n/3`` are Byzantine, over asynchronous authenticated links,
using reliable broadcast + validation + a coin:

Round ``r`` (code for process ``i``, ``value`` is the current estimate):

* **Step 1** — reliably broadcast ``(r, 1, value)``; collect ``n−t``
  *validated* step-1 messages; ``value ←`` their majority bit.
* **Step 2** — broadcast ``(r, 2, value)``; collect ``n−t`` validated
  step-2 messages; if some bit holds a ``> n/2`` majority, mark the value
  as a *decide proposal* ``(d, v)``.
* **Step 3** — broadcast ``(r, 3, value)``; collect ``n−t`` validated
  step-3 messages; let ``c`` be the count of decide proposals ``(d, v)``:

  - ``c ≥ 2t+1`` → **decide v** (and keep participating with ``v``);
  - ``c ≥ t+1``  → ``value ← v``;
  - otherwise    → ``value ←`` the round-``r`` coin.

Safety hinges on two facts proved in :mod:`repro.core.validation`:
decide proposals within a round are unique, and unanimity among correct
processes, once reached, is preserved forever.  Termination: if anyone
decides ``v`` in round ``r``, every ``n−t`` step-3 set contains at least
``t+1`` of the ``2t+1`` proposals, so *every* correct process adopts
``v`` and round ``r+1`` is unanimous; before that, each round ends
unanimous with probability at least ``2^{−(n−t)}`` with local coins (at
least ``1/2`` with a common coin), so the expected number of rounds is
finite (constant with a common coin).

Two deliberate engineering choices beyond the bare paper text:

* **Monotone decide rule.**  The decide check runs over the *cumulative*
  validated step-3 set of every round, not just the first ``n−t``
  messages — deciding is stable, so acting on late-arriving evidence is
  safe and removes a classic starvation scenario for slow processes.
* **Decide amplification & halting** (in the spirit of the paper's own
  broadcast amplification): deciders send ``DECIDE v`` to all; ``t+1``
  matching ``DECIDE``s trigger a relay, ``2t+1`` allow halting.  A
  decided process keeps participating with its value pinned until it may
  halt, so laggards are never starved of step quorums; once any correct
  process halts, at least ``t+1`` correct ``DECIDE``s are in flight and
  every correct process eventually reaches the halting quorum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..params import ProtocolParams
from ..types import Bit, BINARY_VALUES, ProcessId, Round, Step, StepValue
from ..sim.process import ProtocolModule
from .broadcast import BroadcastLayer, RbcDelivery
from .coin import CoinSource


@dataclass(frozen=True)
class DecideMsg:
    """Decide-amplification message (sent over plain authenticated links)."""

    bit: Bit


@dataclass(frozen=True)
class DecisionEvent:
    """Upcall emitted exactly once when this process decides."""

    pid: ProcessId
    bit: Bit
    round: Round


class BrachaConsensus(ProtocolModule):
    """One binary-consensus instance at one process.

    Args:
        broadcast: the process's reliable-broadcast layer; the consensus
            module subscribes to its acceptances and filters its own
            instances (tagged with ``module_id``).
        coin: the per-process coin source.
        module_id: distinguishes concurrent consensus instances (the ACS
            application runs ``n`` of them over one broadcast layer).
        validate: set False to replace the justification machinery with a
            permissive stub — an ABLATION switch for the experiments that
            demonstrate why validation is load-bearing.  Never disable it
            in real use.
        amplify_decides: set False to disable the DECIDE amplification /
            halting layer — the textbook protocol, which runs rounds
            forever.  Also an ablation switch.

    Outputs: a :class:`DecisionEvent` via ``emit`` on decision.  The
    attributes ``decided``/``decision``/``decision_round`` expose the
    outcome; ``stats`` counts rounds and coin uses for the benchmarks.
    """

    MODULE_ID = "bracha"

    def __init__(
        self,
        broadcast: BroadcastLayer,
        coin: CoinSource,
        module_id: str = MODULE_ID,
        validate: bool = True,
        amplify_decides: bool = True,
    ):
        super().__init__(module_id)
        # Import here to avoid a cycle at package-load time.
        from .validation import PermissiveValidator, StepValidator

        self._validator_cls = StepValidator if validate else PermissiveValidator
        self.amplify_decides = amplify_decides
        self.broadcast_layer = broadcast
        self.coin = coin
        broadcast.subscribe(self._on_rbc)

        self.validator: Optional["StepValidator"] = None
        self.round: Round = 0  # 0 = not proposed yet
        self.step: Step = Step.ONE
        self.value: Optional[StepValue] = None
        self.proposal: Optional[Bit] = None

        self.decided = False
        self.decision: Optional[Bit] = None
        self.decision_round: Round = 0
        self._sent_decide = False
        self._decide_votes: Dict[ProcessId, Bit] = {}
        self._halted = False

        self._coin_values: Dict[Round, Bit] = {}
        self._coin_requested: set[Round] = set()

        self.stats = {"rounds": 0, "coin_flips": 0, "adoptions": 0}
        self.invariant_flags: list[str] = []
        #: Estimate held on entering each round: {round: bit}.  Drives the
        #: convergence-dynamics figure (F5) and is handy when debugging.
        self.round_history: Dict[Round, Bit] = {}

    # -- lifecycle ----------------------------------------------------------

    def bind(self, ctx) -> None:  # type: ignore[override]
        super().bind(ctx)
        self.validator = self._validator_cls(ctx.params)

    @property
    def params(self) -> ProtocolParams:
        assert self.ctx is not None
        return self.ctx.params

    def propose(self, bit: Bit) -> None:
        """Start the protocol with input ``bit``."""
        if bit not in BINARY_VALUES:
            raise ValueError(f"can only propose 0 or 1, got {bit!r}")
        if self.proposal is not None:
            raise RuntimeError("propose() called twice")
        self.proposal = bit
        self.value = StepValue(bit)
        self._enter(1, Step.ONE)
        self._progress()

    # -- message plumbing ---------------------------------------------------

    def _instance(self, round_: Round, step: Step, originator: ProcessId):
        return (self.module_id, round_, int(step), originator)

    def _on_rbc(self, delivery: RbcDelivery) -> None:
        """Filter and ingest reliable-broadcast acceptances."""
        instance = delivery.instance
        if not (isinstance(instance, tuple) and len(instance) == 4):
            return
        tag, round_, step_no, origin = instance
        if tag != self.module_id:
            return  # another protocol's broadcast
        if origin != delivery.originator:
            return  # instance name forged by a non-originator
        if not (isinstance(round_, int) and round_ >= 1):
            return
        if step_no not in (1, 2, 3):
            return
        value = delivery.value
        if not isinstance(value, StepValue) or value.bit not in BINARY_VALUES:
            return
        if value.decide and Step(step_no) is not Step.THREE:
            return  # decide marks exist only in step 3
        assert self.validator is not None
        self.validator.add(round_, Step(step_no), origin, value)
        self._progress()

    def on_message(self, sender: ProcessId, payload: object) -> None:
        if isinstance(payload, DecideMsg) and payload.bit in BINARY_VALUES:
            if sender not in self._decide_votes:
                self._decide_votes[sender] = payload.bit
                self._check_decide_votes()

    def _on_coin(self, round_: Round, bit: Bit) -> None:
        self._coin_values[round_] = bit
        self._progress()

    # -- the protocol -----------------------------------------------------

    def _enter(self, round_: Round, step: Step) -> None:
        """Broadcast this process's message for (round, step)."""
        assert self.ctx is not None and self.value is not None
        self.round = round_
        self.step = step
        self.stats["rounds"] = max(self.stats["rounds"], round_)
        if step is Step.ONE:
            self.round_history[round_] = self.value.bit
        payload = self.value if step is Step.THREE else self.value.plain()
        self.broadcast_layer.broadcast(
            self._instance(round_, step, self.ctx.pid), payload
        )
        if step is Step.THREE and round_ not in self._coin_requested:
            self._coin_requested.add(round_)
            self.coin.request(round_, self._on_coin)

    def _progress(self) -> None:
        """Run every applicable upon-rule to fixpoint."""
        if self._halted or self.validator is None or self.round == 0:
            return
        self._check_monotone_decide()
        while not self._halted and self._advance_step():
            self._check_monotone_decide()

    def _step_set(self) -> Optional[Dict[ProcessId, StepValue]]:
        """The first ``n−t`` validated messages of the current position.

        Transitions consume exactly a step quorum, as in the paper; the
        validated dict preserves insertion order, so the choice is the
        deterministic prefix of what this process validated first.
        """
        assert self.validator is not None
        validated = self.validator.validated(self.round, self.step)
        quorum = self.params.step_quorum
        if len(validated) < quorum:
            return None
        items = list(validated.items())[:quorum]
        return dict(items)

    def _advance_step(self) -> bool:
        """Fire one step transition if its guard holds; True if fired."""
        snapshot = self._step_set()
        if snapshot is None:
            return False
        if self.step is Step.ONE:
            self.value = StepValue(self._majority_bit(snapshot))
            self._enter(self.round, Step.TWO)
            return True
        if self.step is Step.TWO:
            self.value = self._step_two_value(snapshot)
            self._enter(self.round, Step.THREE)
            return True
        return self._finish_round(snapshot)

    def _majority_bit(self, snapshot: Dict[ProcessId, StepValue]) -> Bit:
        ones = sum(1 for v in snapshot.values() if v.bit == 1)
        zeros = len(snapshot) - ones
        if ones == zeros:
            # Only possible when n−t is even (non-optimal configurations);
            # keep the current estimate for determinism.
            assert self.value is not None
            return self.value.bit
        return 1 if ones > zeros else 0

    def _step_two_value(self, snapshot: Dict[ProcessId, StepValue]) -> StepValue:
        assert self.value is not None
        for bit in BINARY_VALUES:
            count = sum(1 for v in snapshot.values() if v.bit == bit)
            if count >= self.params.majority:
                return StepValue(bit, decide=True)
        return StepValue(self.value.bit)

    def _finish_round(self, snapshot: Dict[ProcessId, StepValue]) -> bool:
        """Step-3 transition: decide / adopt / coin, then next round."""
        d_counts = {0: 0, 1: 0}
        for v in snapshot.values():
            if v.decide:
                d_counts[v.bit] += 1
        if d_counts[0] and d_counts[1]:
            # Provably impossible while the fault bound holds; recorded
            # so over-resilience experiments can observe the breakage.
            self.invariant_flags.append(
                f"conflicting decide proposals in round {self.round}"
            )
        top_bit: Bit = 0 if d_counts[0] >= d_counts[1] else 1
        top = d_counts[top_bit]
        if top >= self.params.decide_quorum:
            self._decide(top_bit, self.round)
            next_bit = top_bit
        elif top >= self.params.adopt_threshold:
            next_bit = top_bit
            self.stats["adoptions"] += 1
        else:
            coin = self._coin_values.get(self.round)
            if coin is None:
                return False  # wait for the coin; re-fired on its arrival
            self.stats["coin_flips"] += 1
            next_bit = coin
        if self.decided and self.decision is not None:
            next_bit = self.decision  # pinned participation after deciding
        self.value = StepValue(next_bit)
        self._enter(self.round + 1, Step.ONE)
        return True

    # -- deciding and halting ----------------------------------------------

    def _check_monotone_decide(self) -> None:
        """Decide on cumulative evidence: ``2t+1`` validated decide
        proposals for one bit in any round."""
        if self.decided or self.validator is None:
            return
        for round_ in self.validator.rounds_seen():
            support = self.validator.decide_support(round_)
            for bit in BINARY_VALUES:
                if support[bit] >= self.params.decide_quorum:
                    self._decide(bit, round_)
                    return

    def _decide(self, bit: Bit, round_: Round) -> None:
        if self.decided:
            if self.decision != bit:
                self.invariant_flags.append(
                    f"second decision {bit} != {self.decision}"
                )
            return
        assert self.ctx is not None
        self.decided = True
        self.decision = bit
        self.decision_round = round_
        self.ctx.note(f"decide {bit} in round {round_}")
        self.ctx.decide(bit, round=round_)
        self.emit(DecisionEvent(self.ctx.pid, bit, round_))
        if self.amplify_decides and not self._sent_decide:
            self._sent_decide = True
            self.ctx.broadcast(DecideMsg(bit))
        self._check_decide_votes()

    def _check_decide_votes(self) -> None:
        if self._halted or not self.amplify_decides:
            return
        assert self.ctx is not None
        counts = {0: 0, 1: 0}
        for bit in self._decide_votes.values():
            counts[bit] += 1
        for bit in BINARY_VALUES:
            if counts[bit] >= self.params.adopt_threshold and not self._sent_decide:
                # At least one correct process decided `bit`; relaying is
                # safe and lets everyone reach the halting quorum.
                self._sent_decide = True
                self.ctx.broadcast(DecideMsg(bit))
        for bit in BINARY_VALUES:
            if counts[bit] >= self.params.decide_quorum:
                self._decide(bit, self.round)
                self._halt()
                return

    def _halt(self) -> None:
        """Stop participating entirely (safe: a halting quorum exists)."""
        if self._halted:
            return
        self._halted = True
        assert self.ctx is not None
        self.ctx.note(f"halt after deciding {self.decision}")
        self.emit(HaltEvent(self.ctx.pid))

    @property
    def halted(self) -> bool:
        return self._halted


@dataclass(frozen=True)
class HaltEvent:
    """Upcall emitted when the instance reaches its halting quorum."""

    pid: ProcessId
