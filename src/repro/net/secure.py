"""Authenticated transport: the MAC machinery, enforced on the wire.

The simulator's network layer already attributes each message to its
true sender (the standard idealization of pairwise MACs).  This module
*implements* the idealization: every payload travels wrapped in a
:class:`SealedPacket` carrying an HMAC tag over (source, dest, payload),
and the receiving transport verifies the tag against the claimed sender
before releasing the payload to consumers.  A forged or tampered packet
is counted and dropped.

Running a protocol stack over :class:`SecureTransport` therefore
exercises the *real* authentication path; the test suite uses it to show
that a Byzantine process cannot speak in another process's name even if
the attribution idealization were removed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from ..sim.process import ProtocolModule
from ..types import ProcessId
from .auth import Authenticator, KeyRing


@dataclass(frozen=True)
class SealedPacket:
    """Wire format: claimed source, consumer tag, payload, MAC tag."""

    source: ProcessId
    tag: str
    inner: Any
    mac: bytes


class SecureTransport(ProtocolModule):
    """Link-layer module sealing and verifying every message.

    The packet carries a *claimed* source so that verification does not
    depend on the simulator's out-of-band attribution at all: the MAC is
    checked against the claimed identity, and a mismatch (either a
    forged claim or a tampered payload) increments ``rejected`` and
    drops the packet silently — exactly what authenticated channels
    promise.
    """

    MODULE_ID = "secure"

    def __init__(self, authenticator: Authenticator):
        super().__init__(self.MODULE_ID)
        self._auth = authenticator
        self._consumers: Dict[str, Callable[[ProcessId, Any], None]] = {}
        self.rejected = 0
        self.accepted = 0

    @classmethod
    def for_ring(cls, ring: KeyRing, pid: ProcessId) -> "SecureTransport":
        return cls(ring.authenticator(pid))

    # -- upper layer -------------------------------------------------------

    def register_consumer(self, tag: str, callback: Callable[[ProcessId, Any], None]) -> None:
        if tag in self._consumers:
            raise ValueError(f"consumer tag {tag!r} registered twice")
        self._consumers[tag] = callback

    def send_via(self, dest: ProcessId, tag: str, payload: Any) -> None:
        assert self.ctx is not None, "module not bound to a process"
        body = (tag, payload)
        mac = self._auth.tag(dest, body)
        self.ctx.send(dest, SealedPacket(self._auth.pid, tag, payload, mac))

    def broadcast_via(self, tag: str, payload: Any) -> None:
        assert self.ctx is not None, "module not bound to a process"
        for dest in range(self.ctx.params.n):
            self.send_via(dest, tag, payload)

    # -- wire ---------------------------------------------------------------

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        if not isinstance(payload, SealedPacket):
            self.rejected += 1
            return
        body = (payload.tag, payload.inner)
        if not self._auth.verify(payload.source, body, payload.mac):
            self.rejected += 1
            return
        self.accepted += 1
        consumer = self._consumers.get(payload.tag)
        if consumer is not None:
            # The *verified* claimed source is what the consumer sees —
            # attribution now rests on the MAC, not on the simulator.
            consumer(payload.source, payload.inner)
