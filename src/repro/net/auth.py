"""Pairwise message authentication (simulated MACs).

Bracha's protocol is *signature-free*: it needs only authenticated
channels, i.e. symmetric MACs between each pair of processes, and remains
secure against a computationally unbounded adversary (information-
theoretic MACs exist; we use HMAC-SHA256 as a stand-in with the same
interface).

A trusted setup (:class:`KeyRing`) derives one shared key per unordered
pair of processes from a master secret.  :class:`Authenticator` binds a
key ring to one process and produces/verifies per-message tags.  The tag
covers (source, dest, payload) so messages cannot be redirected or
replayed across links undetected.

The simulator's network layer delivers the true sender identity out of
band — the standard idealization of exactly this machinery.  The tests in
``tests/unit/test_auth.py`` validate that the concrete machinery enforces
what the idealization assumes: no forgery across identities, no tampering,
no cross-link replay.
"""

from __future__ import annotations

import hashlib
import hmac

from ..errors import AuthenticationError
from ..types import ProcessId

__all__ = ["AuthenticationError", "Authenticator", "KeyRing"]


def _canonical(payload: object) -> bytes:
    """A canonical byte encoding of a payload for MAC computation.

    ``repr`` of the plain-data message dataclasses is deterministic and
    injective for the payload types used by the library (frozen
    dataclasses of ints, strings, tuples).
    """
    return repr(payload).encode()


class KeyRing:
    """Pairwise symmetric keys for ``n`` processes, from one master secret."""

    def __init__(self, n: int, master_secret: bytes = b"repro-trusted-setup"):
        if n < 1:
            raise AuthenticationError("key ring needs at least one process")
        self.n = n
        self._master = master_secret

    def pair_key(self, a: ProcessId, b: ProcessId) -> bytes:
        """The shared key of the unordered pair ``{a, b}``."""
        if not (0 <= a < self.n and 0 <= b < self.n):
            raise AuthenticationError(f"pid out of range: {a}, {b}")
        lo, hi = min(a, b), max(a, b)
        material = self._master + f"|pair|{lo}|{hi}".encode()
        return hashlib.sha256(material).digest()

    def authenticator(self, pid: ProcessId) -> "Authenticator":
        """An :class:`Authenticator` holding only ``pid``'s keys."""
        keys = {
            other: self.pair_key(pid, other)
            for other in range(self.n)
        }
        return Authenticator(pid, keys)


class Authenticator:
    """Per-process MAC producer/verifier.

    Holds only the keys this process legitimately owns, so an
    authenticator for a Byzantine process is *unable* to tag messages as
    originating from anyone else — the property the protocols rely on.
    """

    def __init__(self, pid: ProcessId, keys: dict[ProcessId, bytes]):
        self.pid = pid
        self._keys = dict(keys)

    def tag(self, dest: ProcessId, payload: object) -> bytes:
        """MAC tag for a message from this process to ``dest``."""
        key = self._keys.get(dest)
        if key is None:
            raise AuthenticationError(f"p{self.pid} has no key for p{dest}")
        message = f"{self.pid}>{dest}|".encode() + _canonical(payload)
        return hmac.new(key, message, hashlib.sha256).digest()

    def verify(self, source: ProcessId, payload: object, tag: bytes) -> bool:
        """Check a tag on a message claimed to come from ``source``."""
        key = self._keys.get(source)
        if key is None:
            return False
        message = f"{source}>{self.pid}|".encode() + _canonical(payload)
        expected = hmac.new(key, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, tag)

    def tag_bytes(self, dest: ProcessId, payload: "bytes | memoryview") -> bytes:
        """MAC tag over raw payload bytes (the binary wire codec's path).

        Same src→dst binding prefix as :meth:`tag`, but the payload is
        fed to the HMAC directly — a :class:`memoryview` is hashed in
        place, so the transports' zero-copy receive path never has to
        materialize the frame body to authenticate it.
        """
        key = self._keys.get(dest)
        if key is None:
            raise AuthenticationError(f"p{self.pid} has no key for p{dest}")
        mac = hmac.new(key, f"{self.pid}>{dest}|".encode(), hashlib.sha256)
        mac.update(payload)
        return mac.digest()

    def verify_bytes(
        self, source: ProcessId, payload: "bytes | memoryview", tag: "bytes | memoryview"
    ) -> bool:
        """Check a :meth:`tag_bytes`-style tag on raw payload bytes."""
        key = self._keys.get(source)
        if key is None:
            return False
        mac = hmac.new(key, f"{source}>{self.pid}|".encode(), hashlib.sha256)
        mac.update(payload)
        return hmac.compare_digest(mac.digest(), bytes(tag))

    def require(self, source: ProcessId, payload: object, tag: bytes) -> None:
        """Like :meth:`verify` but raises :class:`AuthenticationError`."""
        if not self.verify(source, payload, tag):
            raise AuthenticationError(
                f"p{self.pid}: bad tag on message claimed from p{source}"
            )
