"""FIFO transport over unordered reliable links.

The base network delivers messages in arbitrary order.  Some protocols
(and some attacks' countermeasures) assume FIFO point-to-point order;
this module provides the textbook construction: a per-destination send
sequence number and a per-source reorder buffer that releases messages in
sequence.

:class:`FifoTransport` is a :class:`~repro.sim.process.ProtocolModule`
that multiplexes any number of upper-layer consumers, identified by a
string tag — so an entire protocol stack can opt into FIFO semantics by
sending through the transport instead of its raw context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from ..sim.process import ProtocolModule
from ..types import ProcessId


@dataclass(frozen=True)
class FifoPacket:
    """Wire format of the FIFO transport: sequence number plus payload."""

    seq: int
    tag: str
    inner: Any


class FifoTransport(ProtocolModule):
    """Sequence-numbered transport delivering per-link traffic in order.

    Upper layers call :meth:`register_consumer` once with their tag and a
    callback ``(sender, payload) -> None``, then :meth:`send_via` /
    :meth:`broadcast_via` to transmit.  Messages from each source are
    released to consumers strictly in send order, regardless of how the
    network scheduler reorders them in flight.
    """

    MODULE_ID = "fifo"

    def __init__(self) -> None:
        super().__init__(self.MODULE_ID)
        self._send_seq: Dict[ProcessId, int] = {}
        self._recv_next: Dict[ProcessId, int] = {}
        self._reorder: Dict[ProcessId, Dict[int, FifoPacket]] = {}
        self._consumers: Dict[str, Callable[[ProcessId, Any], None]] = {}

    # -- upper-layer interface ------------------------------------------

    def register_consumer(self, tag: str, callback: Callable[[ProcessId, Any], None]) -> None:
        if tag in self._consumers:
            raise ValueError(f"consumer tag {tag!r} registered twice")
        self._consumers[tag] = callback

    def send_via(self, dest: ProcessId, tag: str, payload: Any) -> None:
        assert self.ctx is not None, "module not bound to a process"
        seq = self._send_seq.get(dest, 0)
        self._send_seq[dest] = seq + 1
        self.ctx.send(dest, FifoPacket(seq, tag, payload))

    def broadcast_via(self, tag: str, payload: Any) -> None:
        assert self.ctx is not None, "module not bound to a process"
        for dest in range(self.ctx.params.n):
            self.send_via(dest, tag, payload)

    # -- wire interface ----------------------------------------------------

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        if not isinstance(payload, FifoPacket):
            return  # garbage from a Byzantine sender: drop
        buffer = self._reorder.setdefault(sender, {})
        if payload.seq < self._recv_next.get(sender, 0):
            return  # duplicate / replay: drop
        buffer[payload.seq] = payload
        self._drain(sender)

    def _drain(self, sender: ProcessId) -> None:
        buffer = self._reorder[sender]
        next_seq = self._recv_next.get(sender, 0)
        while next_seq in buffer:
            packet = buffer.pop(next_seq)
            next_seq += 1
            self._recv_next[sender] = next_seq
            consumer = self._consumers.get(packet.tag)
            if consumer is not None:
                consumer(sender, packet.inner)

    # -- inspection (tests) ---------------------------------------------

    def buffered(self, sender: ProcessId) -> int:
        """Number of out-of-order messages held back for ``sender``."""
        return len(self._reorder.get(sender, {}))
