"""Link-layer functionalities: message authentication and FIFO transport.

Bracha's model assumes *authenticated* reliable point-to-point links: the
receiver of a message knows which process sent it, and faulty processes
cannot forge messages on behalf of correct ones.  The simulator passes the
true sender out of band (the usual idealization); :mod:`repro.net.auth`
implements the MAC machinery explicitly so the idealization is backed by
working code, and :mod:`repro.net.links` provides a FIFO transport built
from sequence numbers and a reorder buffer — the standard construction
referenced in the literature.
"""

from .auth import AuthenticationError, Authenticator, KeyRing
from .links import FifoTransport

__all__ = ["AuthenticationError", "Authenticator", "FifoTransport", "KeyRing"]
