"""Experiment harness: seeded runs, safety checking, aggregation, tables.

:mod:`repro.analysis.experiments` is the single entry point used by the
test suite, the benchmarks, and the examples: it assembles a full system
(simulator, network, processes, coin scheme, fault injection), runs it,
and *checks the paper's safety properties* on the way out — agreement,
validity, and integrity are asserted by the harness rather than trusted,
so a regression in any protocol layer fails loudly everywhere.
"""

from .experiments import (
    ConsensusRun,
    broadcast_stack,
    build_consensus_stack,
    run_broadcast,
    run_consensus,
    repeat_consensus,
)
from .stats import Summary, fit_power_law, summarize
from .sweeps import Sweep, SweepResult, quick_sweep
from .tables import format_table

__all__ = [
    "ConsensusRun",
    "Summary",
    "Sweep",
    "SweepResult",
    "broadcast_stack",
    "build_consensus_stack",
    "fit_power_law",
    "format_table",
    "repeat_consensus",
    "quick_sweep",
    "run_broadcast",
    "run_consensus",
    "summarize",
]
