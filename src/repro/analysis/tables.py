"""Fixed-width and markdown table rendering for benchmark output.

Every benchmark regenerating one of the paper-shaped tables prints its
rows through :func:`format_table`, so the harness output reads like the
evaluation section of a systems paper and EXPERIMENTS.md can paste it
verbatim.
"""

from __future__ import annotations

from typing import Any, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    markdown: bool = False,
) -> str:
    """Render rows under headers; column widths adapt to content."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    lines: list[str] = []
    if title:
        lines.append(title)
    if markdown:
        lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
        lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        for row in rendered:
            lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
    else:
        header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
        lines.append(header_line)
        lines.append("-" * len(header_line))
        for row in rendered:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
