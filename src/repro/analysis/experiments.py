"""System assembly and checked execution of protocol runs.

The functions here are the library's "main()": they wire the simulator,
network, protocol stacks, coin scheme, and fault injection together,
execute a seeded run, and verify the paper's safety properties on the
result.  Tests, benchmarks, and examples all go through this module, so
every experiment in the repository gets safety checking for free.

Specifying runs:

* ``proposals`` — ``None`` (split ``pid % 2``), a single bit (unanimous),
  a sequence indexed by pid, or a mapping.
* ``coin`` — ``"local"`` (paper's base model), ``"dealer"`` (oracle
  common coin), ``"shares"`` (distributed Rabin coin), or any
  :class:`~repro.core.coin.CoinScheme` instance.
* ``faults`` — mapping from pid to a behavior spec: a kind string
  (``"silent"``, ``"crash"``, ``"two_faced"``, ``"fuzzer"``,
  ``"stubborn"``) or a dict
  ``{"kind": ..., **kwargs}``.
* ``scheduler`` — any :class:`~repro.sim.scheduler.Scheduler`; default
  uniform random.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Union

from ..adversary.behaviors import (
    ByzantineBehavior,
    SilentBehavior,
    dispatch_behavior,
)
from ..core.broadcast import BroadcastLayer, RbcDelivery
from ..core.coin import CoinScheme, DealerCoin, LocalCoin, ShareCoinProvider
from ..core.consensus import BrachaConsensus
from ..errors import (
    AgreementViolation,
    ConfigError,
    IntegrityViolation,
    LivenessFailure,
    ValidityViolation,
)
from ..params import ProtocolParams, for_system
from ..sim.process import Process, ProtocolModule
from ..sim.rng import derive_seed
from ..sim.runner import Simulation
from ..sim.scheduler import Scheduler
from ..types import Bit, Decision, ProcessId, RunResult

FaultSpec = Union[str, Mapping[str, Any]]
ProposalSpec = Union[None, int, Sequence[int], Mapping[int, int]]
StackFactory = Callable[[Process, CoinScheme], Any]
"""Builds a protocol stack on a process; returns the consensus-like module
(anything with ``propose``/``decided``/``decision``/``halted``/``stats``/
``invariant_flags``).  The default is the Bracha stack; the baseline
harness passes Ben-Or and MMR-14 builders."""


# ---------------------------------------------------------------------------
# Stack builders
# ---------------------------------------------------------------------------


class _Proposer(ProtocolModule):
    """Injects a proposal when the simulation starts.

    Used for the honest stacks inside fault behaviors (crash, two-faced):
    proposing at construction time would send messages before every
    process is registered, so the proposal is deferred to ``start()``.
    """

    def __init__(self, consensus: Any, bit: Bit):
        super().__init__(f"_proposer-{consensus.module_id}")
        self._consensus = consensus
        self._bit = bit

    def start(self) -> None:
        self._consensus.propose(self._bit)

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        pass


def build_consensus_stack(process: Process, coin_scheme: CoinScheme) -> BrachaConsensus:
    """Install the full Bracha stack (RBC + coin + consensus) on a process."""
    rbc = BroadcastLayer()
    process.add_module(rbc)
    coin_source = coin_scheme.attach(process)
    consensus = BrachaConsensus(rbc, coin_source)
    process.add_module(consensus)
    return consensus


def ablation_stack(validate: bool = True, amplify_decides: bool = True) -> StackFactory:
    """A Bracha stack factory with ablation switches (experiments only).

    ``validate=False`` removes the justification machinery — the A1
    experiment shows a single Byzantine process then breaking strong
    validity.  ``amplify_decides=False`` removes the halting layer — the
    A2 experiment shows executions that never quiesce.
    """

    def factory(process: Process, coin_scheme: CoinScheme) -> BrachaConsensus:
        rbc = BroadcastLayer()
        process.add_module(rbc)
        coin_source = coin_scheme.attach(process)
        consensus = BrachaConsensus(
            rbc, coin_source, validate=validate, amplify_decides=amplify_decides
        )
        process.add_module(consensus)
        return consensus

    return factory


def broadcast_stack(process: Process, accepted: Dict[ProcessId, Dict[Any, Any]]) -> BroadcastLayer:
    """Install a bare reliable-broadcast stack; acceptances land in
    ``accepted[pid][instance] = value``."""
    rbc = BroadcastLayer()
    process.add_module(rbc)

    def on_delivery(event: RbcDelivery, pid: ProcessId = process.pid) -> None:
        accepted.setdefault(pid, {})[event.instance] = event.value

    rbc.subscribe(on_delivery)
    return rbc


def make_coin(coin: Union[str, CoinScheme], n: int, t: int, seed: int) -> CoinScheme:
    """Resolve a coin specification to a scheme instance."""
    if isinstance(coin, CoinScheme):
        return coin
    coin_seed = derive_seed(seed, "coin")
    if coin == "local":
        return LocalCoin()
    if coin == "dealer":
        return DealerCoin(n, t, coin_seed)
    if coin == "shares":
        return ShareCoinProvider(n, t, coin_seed)
    raise ConfigError(f"unknown coin scheme {coin!r}")


# ---------------------------------------------------------------------------
# Proposal and fault normalization
# ---------------------------------------------------------------------------


def normalize_proposals(proposals: ProposalSpec, n: int) -> Dict[ProcessId, Bit]:
    if proposals is None:
        return {pid: pid % 2 for pid in range(n)}
    if isinstance(proposals, int):
        return {pid: proposals for pid in range(n)}
    if isinstance(proposals, Mapping):
        table = dict(proposals)
    else:
        table = {pid: bit for pid, bit in enumerate(proposals)}
    for pid in range(n):
        if pid not in table:
            raise ConfigError(f"no proposal for pid {pid}")
        if table[pid] not in (0, 1):
            raise ConfigError(f"proposal for pid {pid} must be a bit")
    return {pid: table[pid] for pid in range(n)}


def _normalize_fault(spec: FaultSpec) -> Dict[str, Any]:
    if isinstance(spec, str):
        return {"kind": spec}
    out = dict(spec)
    if "kind" not in out:
        raise ConfigError(f"fault spec needs a 'kind': {spec!r}")
    return out


# ---------------------------------------------------------------------------
# Assembled run handle
# ---------------------------------------------------------------------------


@dataclass
class ConsensusRun:
    """Everything assembled for one consensus execution."""

    sim: Simulation
    params: ProtocolParams
    coin_scheme: CoinScheme
    proposals: Dict[ProcessId, Bit]
    consensus: Dict[ProcessId, Any] = field(default_factory=dict)
    behaviors: Dict[ProcessId, ByzantineBehavior] = field(default_factory=dict)

    @property
    def correct_pids(self) -> list[ProcessId]:
        return sorted(self.consensus)

    def all_decided(self) -> bool:
        return all(c.decided for c in self.consensus.values())

    def all_halted(self) -> bool:
        return all(c.halted for c in self.consensus.values())

    def propose_all(self) -> None:
        for pid in self.correct_pids:
            self.consensus[pid].propose(self.proposals[pid])


def setup_consensus(
    n: int,
    t: Optional[int] = None,
    proposals: ProposalSpec = None,
    coin: Union[str, CoinScheme] = "local",
    scheduler: Optional[Scheduler] = None,
    faults: Optional[Mapping[ProcessId, FaultSpec]] = None,
    seed: int = 0,
    trace: bool = False,
    stack: Optional[StackFactory] = None,
    allow_excess_faults: bool = False,
) -> ConsensusRun:
    """Assemble (but do not run) a complete consensus execution.

    ``stack`` selects the protocol implementation (default: Bracha).
    ``allow_excess_faults`` permits injecting more than ``t`` faults —
    used by the resilience-boundary experiments that demonstrate what
    breaks beyond the bound; combine with ``check=False``.
    """
    stack_factory = stack if stack is not None else build_consensus_stack
    params = for_system(n, t)
    faults = dict(faults or {})
    for pid in faults:
        if not 0 <= pid < n:
            raise ConfigError(f"fault pid {pid} out of range")
    if len(faults) > params.t and not allow_excess_faults:
        raise ConfigError(
            f"{len(faults)} faults injected but t={params.t}; "
            "pass allow_excess_faults=True if the excess is intentional"
        )

    sim = Simulation(seed=seed, scheduler=scheduler, trace=trace)
    coin_scheme = make_coin(coin, n, params.t, seed)
    table = normalize_proposals(proposals, n)
    run = ConsensusRun(sim, params, coin_scheme, table)

    for pid in range(n):
        if pid in faults:
            run.behaviors[pid] = _build_behavior(
                pid, faults[pid], sim, params, coin_scheme, table, stack_factory
            )
        else:
            process = Process(pid, sim.network, params)
            run.consensus[pid] = stack_factory(process, coin_scheme)
    return run


def _build_behavior(
    pid: ProcessId,
    spec: FaultSpec,
    sim: Simulation,
    params: ProtocolParams,
    coin_scheme: CoinScheme,
    proposals: Dict[ProcessId, Bit],
    stack_factory: StackFactory,
) -> ByzantineBehavior:
    def honest_factory(process: Process, bit: Bit) -> None:
        consensus = stack_factory(process, coin_scheme)
        process.add_module(_Proposer(consensus, bit))

    behavior = dispatch_behavior(
        pid, _normalize_fault(spec), sim.network, params,
        honest_factory, proposals[pid],
    )
    sim.network.register(behavior)
    return behavior


# ---------------------------------------------------------------------------
# Checked execution
# ---------------------------------------------------------------------------


def run_consensus(
    n: int,
    t: Optional[int] = None,
    proposals: ProposalSpec = None,
    coin: Union[str, CoinScheme] = "local",
    scheduler: Optional[Scheduler] = None,
    faults: Optional[Mapping[ProcessId, FaultSpec]] = None,
    seed: int = 0,
    max_steps: int = 2_000_000,
    trace: bool = False,
    check: bool = True,
    stop: str = "decided",
    stack: Optional[StackFactory] = None,
    allow_excess_faults: bool = False,
) -> RunResult:
    """Assemble, execute, and safety-check one consensus run.

    ``stop`` is ``"decided"`` (all correct processes decided — the usual
    measurement point), ``"halted"`` (all correct processes reached
    their halting quorum), or ``"quiescent"`` (drain every message).

    With ``check=True`` any violation of agreement, validity, or
    integrity raises the corresponding :class:`~repro.errors.SafetyViolation`
    subclass, and failing to finish raises
    :class:`~repro.errors.LivenessFailure`.  With ``check=False`` the
    violations are recorded in ``result.violations`` instead — used by
    the over-resilience experiments that *expect* breakage.
    """
    run = setup_consensus(
        n, t, proposals=proposals, coin=coin, scheduler=scheduler,
        faults=faults, seed=seed, trace=trace, stack=stack,
        allow_excess_faults=allow_excess_faults,
    )
    sim = run.sim
    sim.start()
    run.propose_all()

    if stop == "decided":
        until = run.all_decided
    elif stop == "halted":
        until = run.all_halted
    elif stop == "quiescent":
        until = None
    else:
        raise ConfigError(f"unknown stop condition {stop!r}")

    from ..errors import EventBudgetExceeded

    budget_exhausted = False
    try:
        sim.run(until=until, max_steps=max_steps)
    except EventBudgetExceeded:
        if check:
            raise
        budget_exhausted = True

    result = collect_result(run)
    if budget_exhausted:
        result.violations.append("event budget exhausted (possible livelock)")
    verify_result(run, result, check=check)
    return result


def fill_common_meta(
    result: RunResult,
    proposals: Mapping[ProcessId, Any],
    faulty: Any,
    sent_by_kind: Mapping[str, int],
) -> None:
    """The per-run ``meta`` keys every fabric's collector records —
    one writer, so the analysis/table code can rely on the shape."""
    result.meta["proposals"] = dict(proposals)
    result.meta["faulty"] = sorted(faulty)
    result.meta["messages_by_kind"] = dict(sent_by_kind)
    result.meta["decision_rounds"] = {
        pid: d.round for pid, d in result.decisions.items()
    }


def collect_result(run: ConsensusRun) -> RunResult:
    """Extract a :class:`~repro.types.RunResult` from a finished run."""
    sim = run.sim
    result = RunResult(
        steps=sim.steps,
        messages_sent=sim.metrics.sent,
        messages_delivered=sim.metrics.delivered,
        virtual_time=sim.now,
    )
    coin_flips = 0
    for pid, consensus in run.consensus.items():
        if consensus.decided:
            assert consensus.decision is not None
            result.decisions[pid] = Decision(
                pid, consensus.decision, consensus.decision_round, sim.now
            )
        if consensus.halted:
            result.halted.add(pid)
        result.rounds = max(result.rounds, consensus.stats["rounds"])
        coin_flips += consensus.stats["coin_flips"]
    result.meta["coin_flips"] = coin_flips
    fill_common_meta(result, run.proposals, run.behaviors, sim.metrics.sent_by_kind)
    return result


def verify_result(run: ConsensusRun, result: RunResult, check: bool = True) -> None:
    """Apply the paper's safety properties; raise or record violations."""
    verify_outcome(run.proposals, run.consensus, result, check=check)


def verify_outcome(
    proposals: Mapping[ProcessId, Bit],
    consensus_by_pid: Mapping[ProcessId, Any],
    result: RunResult,
    check: bool = True,
) -> None:
    """Safety-check a finished execution, however it was driven.

    ``consensus_by_pid`` maps each *correct* pid to its decision-bearing
    module; the simulator harness and the asyncio runtime cluster both
    funnel their outcomes through here, so the two worlds are held to
    the identical agreement/validity/integrity/liveness standard.
    """
    correct = sorted(consensus_by_pid)
    correct_proposals = {proposals[pid] for pid in correct}

    def fail(exc_cls, message: str) -> None:
        result.violations.append(message)
        if check:
            raise exc_cls(message)

    values = {d.value for d in result.decisions.values()}
    if len(values) > 1:
        fail(AgreementViolation, f"correct processes decided {sorted(values)}")
    for pid, decision in result.decisions.items():
        if decision.value not in correct_proposals:
            fail(
                ValidityViolation,
                f"p{pid} decided {decision.value}, proposed by no correct process",
            )
    for pid in correct:
        flags = consensus_by_pid[pid].invariant_flags
        if flags:
            fail(IntegrityViolation, f"p{pid}: {'; '.join(flags)}")
    if len(result.decisions) < len(correct):
        missing = sorted(set(correct) - set(result.decisions))
        fail(LivenessFailure, f"processes never decided: {missing}")


def verify_instance_outcomes(
    proposals: Mapping[ProcessId, Bit],
    stacks: Mapping[ProcessId, Sequence[Any]],
    instances: int,
    result: RunResult,
    check: bool = True,
) -> None:
    """Hold every instance beyond the first to the same
    :func:`verify_outcome` standard instance 0 already passed —
    agreement, validity, integrity, and liveness per instance.

    ``stacks`` maps each correct pid to its per-instance decision
    modules; used by every fabric that batches parallel instances.
    """
    for i in range(1, instances):
        instance_result = RunResult(
            decisions={
                pid: Decision(
                    pid, modules[i].decision, modules[i].decision_round, 0.0
                )
                for pid, modules in stacks.items()
                if modules[i].decided
            }
        )
        verify_outcome(
            proposals,
            {pid: modules[i] for pid, modules in stacks.items()},
            instance_result,
            check=check,
        )
        result.violations.extend(
            f"instance {i}: {violation}"
            for violation in instance_result.violations
        )


def verify_acs_outcome(
    outputs: Mapping[ProcessId, Any],
    params: Any,
    result: RunResult,
    check: bool = True,
) -> None:
    """Safety-check a finished ACS execution, however it was driven.

    ``outputs`` maps each finished correct pid to its
    :class:`~repro.app.acs.AcsOutput`; all fabrics funnel their ACS
    outcomes through here, checking agreement (identical subsets) and
    the ``n − t`` minimum subset size.
    """

    def fail(message: str) -> None:
        result.violations.append(message)
        if check:
            raise AgreementViolation(message)

    distinct = {out.proposals for out in outputs.values()}
    if len(distinct) > 1:
        fail(f"ACS outputs diverge: {distinct}")
    for out in outputs.values():
        if len(out.proposals) < params.step_quorum:
            fail(
                f"ACS output has {len(out.proposals)} elements, "
                f"need >= {params.step_quorum}"
            )
        break


def repeat_consensus(trials: int, seed: int = 0, **kwargs: Any) -> list[RunResult]:
    """Run ``trials`` independent seeded executions of one configuration."""
    return [
        run_consensus(seed=derive_seed(seed, "trial", i), **kwargs)
        for i in range(trials)
    ]


# ---------------------------------------------------------------------------
# Reliable-broadcast harness
# ---------------------------------------------------------------------------


def run_broadcast(
    n: int,
    t: Optional[int] = None,
    sender: ProcessId = 0,
    value: Any = "payload",
    instance: Any = ("rbc-exp", 0),
    equivocate: Optional[tuple[Any, Any]] = None,
    silent: Sequence[ProcessId] = (),
    scheduler: Optional[Scheduler] = None,
    seed: int = 0,
    max_steps: int = 500_000,
    check: bool = True,
) -> Dict[str, Any]:
    """One reliable-broadcast instance under optional faults.

    If ``equivocate`` is given, the sender is Byzantine and INITs the two
    values to two halves of the system; ``silent`` marks additional
    crash-at-start processes.  Returns acceptance maps and metrics, and
    (with ``check=True``) asserts consistency — no two correct processes
    accept different values — plus totality: if anyone accepted, all
    correct processes accepted.
    """
    from ..adversary.behaviors import EquivocatingBroadcaster

    params = for_system(n, t)
    fault_pids = set(silent) | ({sender} if equivocate else set())
    if len(fault_pids) > params.t:
        raise ConfigError(f"{len(fault_pids)} faults exceed t={params.t}")

    sim = Simulation(seed=seed, scheduler=scheduler)
    accepted: Dict[ProcessId, Dict[Any, Any]] = {}
    layers: Dict[ProcessId, BroadcastLayer] = {}
    for pid in range(n):
        if pid in fault_pids and pid != sender:
            sim.network.register(SilentBehavior(pid, sim.network, params))
        elif pid == sender and equivocate is not None:
            behavior = EquivocatingBroadcaster(
                pid, sim.network, params,
                instance=instance,
                value_a=equivocate[0],
                value_b=equivocate[1],
                group_a=[q for q in range(n) if q != pid][: (n - 1) // 2],
            )
            sim.network.register(behavior)
        else:
            process = Process(pid, sim.network, params)
            layers[pid] = broadcast_stack(process, accepted)

    sim.start()
    if equivocate is None and sender in layers:
        layers[sender].broadcast(instance, value)
    sim.run_to_quiescence(max_steps=max_steps)

    outcomes = {pid: accepted.get(pid, {}).get(instance) for pid in layers}
    accepted_values = {v for v in outcomes.values() if v is not None}
    report: Dict[str, Any] = {
        "outcomes": outcomes,
        "accepted_values": accepted_values,
        "messages": sim.metrics.sent,
        "steps": sim.steps,
        "violations": [],
    }
    if len(accepted_values) > 1:
        message = f"correct processes accepted {accepted_values}"
        report["violations"].append(message)
        if check:
            from ..errors import BroadcastConsistencyViolation

            raise BroadcastConsistencyViolation(message)
    if accepted_values:
        missing = [pid for pid, v in outcomes.items() if v is None]
        if missing:
            message = f"totality broken: {missing} never accepted"
            report["violations"].append(message)
            if check:
                from ..errors import BroadcastConsistencyViolation

                raise BroadcastConsistencyViolation(message)
    return report
