"""Small statistics toolkit for experiment aggregation.

Kept dependency-free (no numpy) so the core library stays pure; the
benchmark layer may still use numpy/scipy for anything heavier.  The two
non-obvious pieces:

* :func:`summarize` — mean/stddev/min/max/percentiles plus a normal-
  approximation 95% confidence interval on the mean, which is what the
  expected-round tables report.
* :func:`fit_power_law` — least-squares slope in log-log space, used to
  check the message-complexity exponents (≈ 2 for reliable broadcast,
  ≈ 3 per consensus round).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Summary:
    """Aggregate description of one metric across repeated runs."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float
    ci95_half_width: float

    def ci(self) -> tuple[float, float]:
        return (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)

    def __str__(self) -> str:
        return (
            f"{self.mean:.2f} ±{self.ci95_half_width:.2f} "
            f"(p50={self.p50:.1f} p90={self.p90:.1f} max={self.maximum:.0f})"
        )


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1 - frac) + ordered[high] * frac)


def summarize(values: Sequence[float]) -> Summary:
    """Descriptive statistics for one metric."""
    if not values:
        raise ValueError("cannot summarize an empty sequence")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        variance = 0.0
    stddev = math.sqrt(variance)
    half_width = 1.96 * stddev / math.sqrt(n) if n > 1 else 0.0
    return Summary(
        count=n,
        mean=mean,
        stddev=stddev,
        minimum=float(min(values)),
        maximum=float(max(values)),
        p50=percentile(values, 50),
        p90=percentile(values, 90),
        p99=percentile(values, 99),
        ci95_half_width=half_width,
    )


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Fit ``y ≈ c · x^k`` by least squares in log-log space.

    Returns ``(k, c)``.  Requires positive data and at least two points.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit needs positive data")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    n = len(xs)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    sxx = sum((lx - mean_x) ** 2 for lx in log_x)
    if sxx == 0:
        raise ValueError("xs are all equal; slope undefined")
    sxy = sum((lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    return slope, math.exp(intercept)


def histogram(values: Sequence[int]) -> dict[int, int]:
    """Exact integer histogram (used for round-count distributions)."""
    counts: dict[int, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return dict(sorted(counts.items()))
