"""Parameter sweeps — compatibility wrapper over the scenario grid.

The sweep API predates the declarative scenario layer
(:mod:`repro.scenario`); grids are now expanded and executed by
:class:`repro.scenario.grid.ScenarioGrid`, which sweeps *scenario
fields* and therefore covers fabrics, schedulers, and stop conditions
too.  :class:`Sweep` remains as the backward-compatible front: data-only
configurations (the common case) are routed through a scenario grid,
while configurations carrying live objects — a ``stack`` factory, a
:class:`~repro.sim.scheduler.Scheduler` instance, a
:class:`~repro.core.coin.CoinScheme` — fall back to driving
:func:`~repro.analysis.experiments.run_consensus` directly, since
callables cannot be captured in a declarative spec.

    from repro.analysis.sweeps import Sweep

    sweep = Sweep(trials=10, seed=42)
    sweep.add("n", [4, 7, 10])
    sweep.add("coin", ["local", "dealer"])
    grid = sweep.run()
    print(grid.table(metric="rounds"))

Every run goes through the checked harness, so a sweep cannot silently
aggregate unsafe executions; cells whose runs violate safety (possible
only when the caller opts into failure tolerance) carry their failure
counts.  New code should use :class:`~repro.scenario.grid.ScenarioGrid`
directly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from ..errors import ConfigError, ReproError
from ..scenario.grid import (
    METRICS,
    _SCENARIO_FIELDS,
    Cell,
    ScenarioGrid,
    SweepResult,
)
from ..scenario.spec import Scenario
from ..sim.rng import derive_seed
from ..types import RunResult
from .experiments import run_consensus

__all__ = [
    "Cell",
    "METRICS",
    "Sweep",
    "SweepResult",
    "quick_sweep",
]

def _declarative(key: str, value: Any) -> bool:
    """True when (key, value) can live in a frozen Scenario.

    Any Scenario field routes through the grid; everything else —
    ``stack``, ``trace``, ``check`` — forces the legacy run_consensus
    path, as do live objects where a field expects a name.
    """
    if key not in _SCENARIO_FIELDS:
        return False
    if key in ("coin", "scheduler") and value is not None and not isinstance(value, str):
        return False  # live CoinScheme / Scheduler objects
    return True


class Sweep:
    """A grid of consensus configurations (compatibility surface).

    ``add(name, values)`` declares a swept dimension; fixed arguments go
    in ``base``.  Per-cell trial seeds derive from the sweep seed and the
    configuration, so adding a dimension does not reshuffle existing
    cells.  Prefer :class:`repro.scenario.grid.ScenarioGrid` in new code.
    """

    def __init__(
        self,
        trials: int = 10,
        seed: int = 0,
        base: Mapping[str, Any] | None = None,
        tolerate_failures: bool = False,
        max_steps: int = 4_000_000,
    ):
        if trials < 1:
            raise ConfigError("need at least one trial per cell")
        self.trials = trials
        self.seed = seed
        self.base = dict(base or {})
        self.tolerate_failures = tolerate_failures
        self.max_steps = max_steps
        self._dimensions: List[Tuple[str, List[Any]]] = []

    def add(self, name: str, values: Iterable[Any]) -> "Sweep":
        values = list(values)
        if not values:
            raise ConfigError(f"dimension {name!r} has no values")
        if name in dict(self._dimensions):
            raise ConfigError(f"dimension {name!r} declared twice")
        self._dimensions.append((name, values))
        return self

    def _is_declarative(self) -> bool:
        pairs = list(self.base.items()) + [
            (name, value)
            for name, values in self._dimensions
            for value in values
        ]
        return all(_declarative(key, value) for key, value in pairs)

    def run(self) -> SweepResult:
        if not self._dimensions:
            raise ConfigError("declare at least one dimension before running")
        if self._is_declarative():
            # The base stays a mapping so it is validated together with
            # each cell's swept values (a fault table may only fit the
            # swept n, for instance), exactly as the legacy engine did.
            grid = ScenarioGrid(
                {"max_steps": self.max_steps, **self.base},
                trials=self.trials, seed=self.seed,
                tolerate_failures=self.tolerate_failures,
            )
            for name, values in self._dimensions:
                grid.add(name, values)
            return grid.run()
        return self._run_legacy()

    def _run_legacy(self) -> SweepResult:
        """Drive run_consensus directly for non-declarative configs."""
        import itertools

        names = [name for name, _values in self._dimensions]
        result = SweepResult(tuple(names))
        for combo in itertools.product(*(v for _n, v in self._dimensions)):
            config = tuple(zip(names, combo))
            kwargs: Dict[str, Any] = dict(self.base)
            kwargs.update(dict(config))
            runs: List[RunResult] = []
            failures = 0
            for trial in range(self.trials):
                trial_seed = derive_seed(self.seed, "sweep", config, trial)
                try:
                    runs.append(
                        run_consensus(
                            seed=trial_seed, max_steps=self.max_steps, **kwargs
                        )
                    )
                except ReproError:
                    if not self.tolerate_failures:
                        raise
                    failures += 1
            result.cells.append(Cell(config, tuple(runs), failures))
        return result


def quick_sweep(
    ns: Sequence[int] = (4, 7),
    coins: Sequence[str] = ("local", "dealer"),
    trials: int = 10,
    seed: int = 0,
) -> SweepResult:
    """The most common sweep (n × coin on split inputs), one call."""
    sweep = Sweep(trials=trials, seed=seed)
    sweep.add("n", list(ns))
    sweep.add("coin", list(coins))
    return sweep.run()
