"""Parameter sweeps: grid experiments as a library feature.

The benchmark suite runs ad-hoc loops; this module packages the same
pattern for downstream users: declare a grid of configurations, run
``trials`` seeded executions per cell, and get back aggregated metrics
plus a ready-to-print table.

    from repro.analysis.sweeps import Sweep

    sweep = Sweep(trials=10, seed=42)
    sweep.add("n", [4, 7, 10])
    sweep.add("coin", ["local", "dealer"])
    grid = sweep.run()
    print(grid.table(metric="rounds"))

Every run goes through the checked harness, so a sweep cannot silently
aggregate unsafe executions; cells whose runs violate safety (possible
only when the caller opts into ``check=False`` configurations) carry
their violation counts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from ..errors import ConfigError, ReproError
from ..sim.rng import derive_seed
from ..types import RunResult
from .experiments import run_consensus
from .stats import Summary, summarize
from .tables import format_table

#: Metrics extractable from a RunResult, by name.
METRICS = {
    "rounds": lambda r: float(r.decision_round()),
    "total_rounds": lambda r: float(r.rounds),
    "messages": lambda r: float(r.messages_sent),
    "steps": lambda r: float(r.steps),
    "virtual_time": lambda r: float(r.virtual_time),
    "coin_flips": lambda r: float(r.meta.get("coin_flips", 0)),
}


@dataclass(frozen=True)
class Cell:
    """One grid point: the configuration and its aggregated results."""

    config: Tuple[Tuple[str, Any], ...]
    results: Tuple[RunResult, ...]
    failures: int  # runs that raised (only with tolerate_failures=True)

    def metric(self, name: str) -> Summary:
        if name not in METRICS:
            raise ConfigError(
                f"unknown metric {name!r}; choose from {sorted(METRICS)}"
            )
        if not self.results:
            raise ConfigError("cell has no successful runs to summarize")
        return summarize([METRICS[name](r) for r in self.results])

    def violations(self) -> int:
        return sum(len(r.violations) for r in self.results)

    @property
    def label(self) -> Dict[str, Any]:
        return dict(self.config)


@dataclass
class SweepResult:
    """All cells of a finished sweep."""

    dimensions: Tuple[str, ...]
    cells: List[Cell] = field(default_factory=list)

    def table(self, metric: str = "rounds", markdown: bool = False) -> str:
        """Render one metric across the grid as a table."""
        headers = list(self.dimensions) + [
            "trials", "failures", f"{metric} mean", "±95%", "p90", "max",
        ]
        rows = []
        for cell in self.cells:
            label = cell.label
            if cell.results:
                summary = cell.metric(metric)
                stats_cols = [summary.mean, summary.ci95_half_width,
                              summary.p90, summary.maximum]
            else:
                stats_cols = ["-", "-", "-", "-"]
            rows.append(
                [label[d] for d in self.dimensions]
                + [len(cell.results), cell.failures] + stats_cols
            )
        return format_table(headers, rows, markdown=markdown)

    def best(self, metric: str = "rounds") -> Cell:
        """The cell with the lowest mean of ``metric``."""
        candidates = [c for c in self.cells if c.results]
        if not candidates:
            raise ConfigError("sweep produced no successful cells")
        return min(candidates, key=lambda c: c.metric(metric).mean)

    def cell(self, **config: Any) -> Cell:
        """Look up a cell by (a subset of) its configuration."""
        for candidate in self.cells:
            label = candidate.label
            if all(label.get(k) == v for k, v in config.items()):
                return candidate
        raise ConfigError(f"no cell matching {config!r}")


class Sweep:
    """A grid of ``run_consensus`` configurations.

    ``add(name, values)`` declares a swept dimension; any keyword
    accepted by :func:`repro.analysis.experiments.run_consensus` works
    (``n``, ``t``, ``coin``, ``proposals``, ``faults``, ``stack``...).
    Fixed arguments go in ``base``.  Per-cell trial seeds derive from
    the sweep seed and the configuration, so adding a dimension does not
    reshuffle existing cells.
    """

    def __init__(
        self,
        trials: int = 10,
        seed: int = 0,
        base: Mapping[str, Any] | None = None,
        tolerate_failures: bool = False,
        max_steps: int = 4_000_000,
    ):
        if trials < 1:
            raise ConfigError("need at least one trial per cell")
        self.trials = trials
        self.seed = seed
        self.base = dict(base or {})
        self.tolerate_failures = tolerate_failures
        self.max_steps = max_steps
        self._dimensions: List[Tuple[str, List[Any]]] = []

    def add(self, name: str, values: Iterable[Any]) -> "Sweep":
        values = list(values)
        if not values:
            raise ConfigError(f"dimension {name!r} has no values")
        if name in dict(self._dimensions):
            raise ConfigError(f"dimension {name!r} declared twice")
        self._dimensions.append((name, values))
        return self

    def _configs(self) -> Iterable[Tuple[Tuple[str, Any], ...]]:
        names = [name for name, _values in self._dimensions]
        for combo in itertools.product(*(values for _n, values in self._dimensions)):
            yield tuple(zip(names, combo))

    def run(self) -> SweepResult:
        if not self._dimensions:
            raise ConfigError("declare at least one dimension before running")
        result = SweepResult(tuple(name for name, _v in self._dimensions))
        for config in self._configs():
            kwargs: Dict[str, Any] = dict(self.base)
            kwargs.update(dict(config))
            runs: List[RunResult] = []
            failures = 0
            for trial in range(self.trials):
                trial_seed = derive_seed(self.seed, "sweep", config, trial)
                try:
                    runs.append(
                        run_consensus(
                            seed=trial_seed, max_steps=self.max_steps, **kwargs
                        )
                    )
                except ReproError:
                    if not self.tolerate_failures:
                        raise
                    failures += 1
            result.cells.append(Cell(config, tuple(runs), failures))
        return result


def quick_sweep(
    ns: Sequence[int] = (4, 7),
    coins: Sequence[str] = ("local", "dealer"),
    trials: int = 10,
    seed: int = 0,
) -> SweepResult:
    """The most common sweep (n × coin on split inputs), one call."""
    sweep = Sweep(trials=trials, seed=seed)
    sweep.add("n", list(ns))
    sweep.add("coin", list(coins))
    return sweep.run()
