"""repro — Bracha's asynchronous Byzantine consensus (PODC 1984), reproduced.

A production-quality Python reproduction of Gabriel Bracha's landmark
⌊(n−1)/3⌋-resilient randomized consensus protocol and everything it
stands on: reliable broadcast, message validation, local and common
coins (including a real dealer-shared Shamir coin), a deterministic
discrete-event network simulator with adversarial schedulers, Byzantine
fault behaviors, baseline protocols (Ben-Or 1983, Rabin-style common
coin, an MMR-2014-style ABA), applications (asynchronous common
subset, replicated log), and an asyncio runtime that executes the same
protocol stacks concurrently over in-process queues or authenticated
JSON-over-TCP (:mod:`repro.runtime`).

Experiments are declarative (:mod:`repro.scenario`): a frozen
:class:`Scenario` captures protocol, faults, network conditions, and
execution fabric, and one spec runs on the simulator, asyncio queues,
or authenticated TCP alike.

Quickstart::

    from repro import Scenario, run_scenario, run_consensus

    result = run_scenario(Scenario(n=4, proposals=[0, 1, 1, 0], seed=7))
    print(result.decided_values)   # {0} or {1} — but always a singleton

    run_consensus(n=4, proposals=[0, 1, 1, 0], seed=7)  # low-level sim entry

See DESIGN.md for the architecture and EXPERIMENTS.md for the
reproduction of every claim in the paper.
"""

from .analysis.experiments import (
    repeat_consensus,
    run_broadcast,
    run_consensus,
    setup_consensus,
)
from .core.broadcast import BroadcastLayer, RbcDelivery, RbcMessage
from .core.coin import DealerCoin, LocalCoin, ShareCoinProvider
from .core.consensus import BrachaConsensus, DecisionEvent
from .errors import (
    AgreementViolation,
    ConfigError,
    LivenessFailure,
    ReproError,
    SafetyViolation,
    ValidityViolation,
)
from .netem import LinkModel, NetemConfig, Partition
from .params import ProtocolParams, for_system, max_faults
from .runtime import Cluster, run_cluster, run_cluster_sync
from .scenario import (
    CATALOG,
    Scenario,
    ScenarioGrid,
    get_scenario,
    load_scenario,
)
from .scenario import run as run_scenario
from .sim.runner import Simulation
from .types import RunResult, StepValue

__version__ = "1.0.0"

__all__ = [
    "AgreementViolation",
    "BrachaConsensus",
    "BroadcastLayer",
    "CATALOG",
    "ConfigError",
    "DealerCoin",
    "DecisionEvent",
    "LinkModel",
    "LivenessFailure",
    "LocalCoin",
    "NetemConfig",
    "Partition",
    "ProtocolParams",
    "RbcDelivery",
    "RbcMessage",
    "ReproError",
    "Cluster",
    "RunResult",
    "SafetyViolation",
    "Scenario",
    "ScenarioGrid",
    "ShareCoinProvider",
    "Simulation",
    "StepValue",
    "ValidityViolation",
    "__version__",
    "for_system",
    "get_scenario",
    "load_scenario",
    "max_faults",
    "repeat_consensus",
    "run_broadcast",
    "run_cluster",
    "run_cluster_sync",
    "run_consensus",
    "run_scenario",
    "setup_consensus",
]
