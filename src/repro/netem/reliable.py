"""Sequence-number/ack retransmission over an unreliable transport.

Under a :class:`~repro.netem.policy.LinkPolicy` that drops frames, the
raw transports no longer satisfy the paper's model — the asynchronous
network may delay messages between correct processes arbitrarily but
must deliver them *eventually*.  :class:`ReliableLink` restores that
guarantee the textbook way: every outbound payload is wrapped in a
:class:`LinkFrame` carrying a per-destination sequence number and kept
in a pending table until the matching :class:`LinkAck` returns; a
background scan resends frames whose ack is overdue.  The receiver acks
every frame it sees (acks are themselves unreliable — a lost ack just
costs one more resend) and filters duplicates, whether the duplicate
came from the retransmitter or from the link model's own duplication.

The guarantee is deliberately asymmetric, matching the fault model:
between two *correct* endpoints, loss probability ``p < 1`` plus
unbounded-in-expectation resends give eventual delivery; a faulty peer
is owed nothing, so a frame is abandoned after ``max_retries`` resends
(a crashed or forever-partitioned peer must not pin memory and
bandwidth eternally — with the default 50 retries the abandonment
probability for a *live* link is ``loss^50``, beyond negligible).

No ordering is imposed: the protocols are built for an asynchronous
network and tolerate arbitrary reordering, so frames are delivered
upward the moment they arrive.  Payloads that are not link frames pass
through untouched — traffic from peers outside the reliability layer
remains visible, exactly as a real stack demotes unknown framing to
best-effort.

The payload a frame carries is opaque: with the batched message
pipeline on, it is a whole :class:`~repro.runtime.codec.WireBatch`, and
sequencing, acking, retransmission, and dedup all operate on the batch
as one wire frame — the per-frame semantics of this layer are
independent of how many protocol messages ride inside.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple

from ..types import ProcessId
from .clock import Clock
from .frames import LinkAck, LinkFrame

if TYPE_CHECKING:
    # Not imported at runtime: pulling in the transport module here would
    # close an import cycle (runtime package -> cluster -> netem ->
    # reliable -> runtime).  ReliableLink implements the Transport
    # surface structurally instead of by inheritance.
    from ..runtime.transport import Transport


class _Pending:
    """Book-keeping for one unacknowledged frame.

    ``due`` is the next instant the retransmission wheel should look at
    this frame; a heap record whose due time disagrees with the entry's
    is stale (the frame was resent or paused meanwhile) and is skipped.
    """

    __slots__ = ("frame", "sent_at", "retries", "due")

    def __init__(self, frame: LinkFrame, sent_at: float, due: float):
        self.frame = frame
        self.sent_at = sent_at
        self.retries = 0
        self.due = due


class _SeenWindow:
    """Duplicate filter for one inbound link: contiguous floor + stragglers."""

    __slots__ = ("floor", "above")

    def __init__(self) -> None:
        self.floor = 0  # every seq < floor has been delivered
        self.above: Set[int] = set()

    def add(self, seq: int) -> bool:
        """Record ``seq``; return True when it is new."""
        if seq < self.floor or seq in self.above:
            return False
        self.above.add(seq)
        while self.floor in self.above:
            self.above.remove(self.floor)
            self.floor += 1
        return True


class ReliableLink:
    """Wrap any :class:`~repro.runtime.transport.Transport` with
    per-destination sequencing, acks, dedup, and timed retransmission.
    Implements the full ``Transport`` surface (structurally, to stay out
    of the transport module's import graph), so nodes use it unchanged.

    The wrapper is transparent to the node: ``send``/``recv`` carry the
    protocol payloads; framing, acking, and resends happen underneath.
    Counters (``retransmitted``, ``abandoned``, ``duplicates_filtered``,
    ``acks_sent``) feed the run report's netem section.
    """

    def __init__(
        self,
        inner: "Transport",
        clock: Clock,
        rto: float = 0.05,
        max_retries: int = 50,
        severed: Optional[Callable[[ProcessId, float], bool]] = None,
        observer: Optional[Any] = None,
        seq_base: int = 0,
    ):
        self.inner = inner
        self.pid = inner.pid
        self.clock = clock
        self.rto = rto
        self.max_retries = max_retries
        # severed(dest, now) -> True while a scripted partition blocks
        # this link.  Resends pause (and the retry budget is not
        # charged) for the duration: a partition that later heals must
        # not exhaust max_retries first — the budget exists for peers
        # that never answer, not for windows the scenario promised would
        # close.
        self._severed = severed
        #: Optional structured-event hub: resends and abandonments are
        #: the link-layer facts worth a timeline entry.
        self.observer = observer
        # A process recovered from a WAL restarts its per-destination
        # counters, but its peers' duplicate filters remember the old
        # sequence space — everything it sends would be dropped as
        # duplicates.  A recovery boot passes a seq_base far above any
        # seq the previous incarnation could have reached (an epoch per
        # restart attempt), so post-recovery frames are always new.
        self.seq_base = seq_base
        self._next_seq: Dict[ProcessId, int] = {}
        self._pending: Dict[Tuple[ProcessId, int], _Pending] = {}
        # Timer wheel: a heap of (due, dest, seq) records with lazy
        # deletion — acks only remove the _pending entry, and a resend
        # pushes a fresh record rather than resorting.  The scan pops
        # only what is due, O(due · log P) instead of the old full
        # sorted sweep's O(P log P) per tick.
        self._heap: List[Tuple[float, ProcessId, int]] = []
        self._seen: Dict[ProcessId, _SeenWindow] = {}
        self._scan_task: Optional[asyncio.Task] = None
        self._closed = False
        self.delivered = 0
        self.retransmitted = 0
        self.retransmitted_by_dest: Dict[ProcessId, int] = {}
        self.abandoned = 0
        self.duplicates_filtered = 0
        self.acks_sent = 0

    # -- delegated surface ---------------------------------------------------

    @property
    def rejected(self) -> int:
        return getattr(self.inner, "rejected", 0)

    async def start(self) -> None:
        await self.inner.start()
        self.start_scan()

    def start_scan(self) -> None:
        """Launch the retransmission scan (idempotent).

        Split out of :meth:`start` so a cluster that has already
        started/connected the raw transports can wrap them without
        re-running their lifecycle.
        """
        if self._scan_task is None and not self._closed:
            self._scan_task = asyncio.ensure_future(self._scan_loop())

    async def connect(self) -> None:
        await self.inner.connect()

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._scan_task is not None:
            self._scan_task.cancel()
            try:
                await self._scan_task
            except asyncio.CancelledError:
                pass
            self._scan_task = None
        self._pending.clear()
        self._heap.clear()
        await self.inner.close()

    # -- data plane ----------------------------------------------------------

    async def send(self, dest: ProcessId, payload: Any) -> None:
        if self._closed:
            return
        if dest == self.pid:
            # Self-delivery is internal; it needs no loss protection and
            # must not consume link sequence numbers.
            await self.inner.send(dest, payload)
            return
        seq = self._next_seq.get(dest, self.seq_base)
        self._next_seq[dest] = seq + 1
        frame = LinkFrame(seq, payload)
        now = self.clock.now()
        self._pending[(dest, seq)] = _Pending(frame, now, now + self.rto)
        heapq.heappush(self._heap, (now + self.rto, dest, seq))
        await self.inner.send(dest, frame)

    async def recv(self) -> Tuple[ProcessId, Any]:
        while True:
            sender, payload = await self.inner.recv()  # raises TransportClosed
            if isinstance(payload, LinkAck):
                self._pending.pop((sender, payload.seq), None)
                continue
            if isinstance(payload, LinkFrame):
                # Ack first, even for duplicates: the original ack may be
                # the thing the link lost.
                self.acks_sent += 1
                await self.inner.send(sender, LinkAck(payload.seq))
                window = self._seen.get(sender)
                if window is None:
                    window = self._seen[sender] = _SeenWindow()
                if not window.add(payload.seq):
                    self.duplicates_filtered += 1
                    continue
                self.delivered += 1
                return sender, payload.inner
            # Unframed traffic (e.g. a peer outside the reliability layer)
            # passes through as-is.
            self.delivered += 1
            return sender, payload

    # -- the retransmission scan ---------------------------------------------

    def _collect_due(self, now: float) -> List[Tuple[ProcessId, _Pending]]:
        """Pop every frame whose resend is due; return what to retransmit.

        Synchronous on purpose: the scan tick's cost is exactly this
        call (heap pops plus lazy-deletion skips), so the benchmark can
        measure it without an event loop.  Counters, abandonment, and
        observer events happen here; the caller only awaits the sends.
        """
        heap = self._heap
        pending = self._pending
        resend: List[Tuple[ProcessId, _Pending]] = []
        while heap and heap[0][0] <= now:
            due, dest, seq = heapq.heappop(heap)
            entry = pending.get((dest, seq))
            if entry is None or entry.due != due:
                continue  # acked, abandoned, or rescheduled meanwhile
            if self._severed is not None and self._severed(dest, now):
                # Wait out the partition for free: resends pause and the
                # retry budget is not charged — the budget exists for
                # peers that never answer, not for windows the scenario
                # promised would close.
                entry.sent_at = now
                entry.due = now + self.rto * (1 << min(entry.retries, 3))
                heapq.heappush(heap, (entry.due, dest, seq))
                continue
            if entry.retries >= self.max_retries:
                pending.pop((dest, seq), None)
                self.abandoned += 1
                if self.observer is not None:
                    self.observer.emit(
                        "abandon", node=self.pid,
                        detail={"dest": dest, "seq": seq,
                                "retries": entry.retries},
                    )
                continue
            # Exponential backoff (capped at 8x rto): an ack that is
            # merely slow — a busy receiver drains a deep inbox before
            # acking — must not burn the retry budget the way a
            # genuinely dead link does.
            entry.retries += 1
            entry.sent_at = now
            entry.due = now + self.rto * (1 << min(entry.retries, 3))
            heapq.heappush(heap, (entry.due, dest, seq))
            self.retransmitted += 1
            self.retransmitted_by_dest[dest] = (
                self.retransmitted_by_dest.get(dest, 0) + 1
            )
            if self.observer is not None:
                self.observer.emit(
                    "retransmit", node=self.pid,
                    detail={"dest": dest, "seq": seq,
                            "retry": entry.retries},
                )
            resend.append((dest, entry))
        return resend

    async def _scan_loop(self) -> None:
        while not self._closed:
            await self.clock.sleep(self.rto)
            if self._closed:
                return
            for dest, entry in self._collect_due(self.clock.now()):
                if self._closed:
                    return
                # The entry may have been acked while we awaited an
                # earlier send; a redundant resend is harmless (the
                # receiver's window filters it) and rare.
                await self.inner.send(dest, entry.frame)

    # -- inspection ----------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Frames sent but not yet acknowledged or abandoned."""
        return len(self._pending)


__all__ = ["LinkAck", "LinkFrame", "ReliableLink"]
