"""Netem: deterministic adverse-network emulation for the runtime fabrics.

The discrete-event simulator owns adversarial *scheduling*; this package
owns adversarial *links* for the real runtime: per-link delay
distributions, drop probability, duplication, reordering, and scripted
partition/heal timelines, all seeded and reproducible, plus the
sequence-number/ack retransmission layer that keeps correct peers
eventually-delivering under loss.

Pieces:

* :mod:`~repro.netem.models` — the validated config values
  (:class:`LinkModel`, :class:`Partition`, :class:`NetemConfig`) that
  scenarios' ``link``/``partitions`` fields parse into.
* :mod:`~repro.netem.policy` — :class:`LinkPolicy`, the seeded per-link
  verdict source both ``LocalHub`` and ``TcpTransport`` consult.
* :mod:`~repro.netem.clock` — :class:`TickClock` (deterministic virtual
  time for the ``local`` fabric) and :class:`WallClock` (``tcp``).
* :mod:`~repro.netem.reliable` — :class:`ReliableLink`, the
  retransmission transport wrapper.

See ``docs/netem.md`` for the model and its guarantees.
"""

from .clock import Clock, TickClock, WallClock
from .frames import LinkAck, LinkFrame
from .models import LinkModel, NetemConfig, Partition, partition_to_spec
from .policy import Delivery, LinkCounters, LinkPolicy
from .reliable import ReliableLink

__all__ = [
    "Clock",
    "Delivery",
    "LinkAck",
    "LinkCounters",
    "LinkFrame",
    "LinkModel",
    "LinkPolicy",
    "NetemConfig",
    "Partition",
    "ReliableLink",
    "TickClock",
    "WallClock",
    "partition_to_spec",
]
