"""Declarative link-condition models for the runtime fabrics.

A :class:`LinkModel` describes what one directed link between two
distinct processes may do to a frame: delay it (base plus uniform
jitter), drop it, duplicate it, or hold it back long enough to reorder
it behind later traffic.  A :class:`Partition` is a scripted window of
modeled time during which frames crossing the named groups are dropped
outright.  :class:`NetemConfig` bundles one model, a partition
timeline, and the retransmission-layer knobs into the single validated
value the scenario spec, the cluster driver, and the CLI all share.

Everything here is plain data with eager validation: every invalid
field raises :class:`~repro.errors.ConfigError` at construction, so a
bad ``link`` spec in a scenario file fails at load time, not a minute
into a run.  Self-links (``src == dst``) are never subject to any of
this — a process's channel to itself is internal state, not network.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError

#: Fields of :class:`LinkModel` that are per-frame probabilities.
_PROBABILITIES = ("loss", "duplicate", "reorder")
#: Fields of :class:`LinkModel` that are non-negative durations (seconds).
_DURATIONS = ("delay", "jitter", "reorder_extra")


def _number(spec: Mapping[str, Any], key: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"link field {key!r} must be a number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class LinkModel:
    """Per-link frame conditions, netem-style.

    Attributes:
        delay: base one-way delay in modeled seconds.
        jitter: extra uniform delay in ``[0, jitter]`` per frame.
        loss: probability a frame is dropped entirely.
        duplicate: probability a frame is delivered twice (the copy
            draws its own delay, so duplicates may arrive out of order).
        reorder: probability a frame is held back ``reorder_extra``
            longer than its drawn delay — later frames overtake it.
        reorder_extra: the hold-back; ``0`` derives a default of
            ``max(4 * (delay + jitter), 0.002)`` when ``reorder`` is set.
    """

    delay: float = 0.0
    jitter: float = 0.0
    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_extra: float = 0.0

    def __post_init__(self) -> None:
        for name in _PROBABILITIES:
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigError(
                    f"link probability {name!r} must be in [0, 1), got {value!r}"
                )
        for name in _DURATIONS:
            value = getattr(self, name)
            if value < 0.0:
                raise ConfigError(
                    f"link duration {name!r} must be >= 0, got {value!r}"
                )
        if self.reorder and not self.reorder_extra:
            derived = max(4.0 * (self.delay + self.jitter), 0.002)
            object.__setattr__(self, "reorder_extra", derived)

    @property
    def idle(self) -> bool:
        """True when this model never touches a frame."""
        return all(getattr(self, f.name) == 0.0 for f in fields(self))


@dataclass(frozen=True)
class Partition:
    """One scripted partition window on the modeled-time axis.

    Between ``start`` (inclusive) and ``stop`` (exclusive; ``None`` =
    never heals), frames are dropped when their endpoints fall in
    different groups.  Processes not named in any group form one
    implicit "rest" group: they stay connected to each other but are
    cut off from every named group.
    """

    start: float
    stop: Optional[float]
    groups: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigError(f"partition start must be >= 0, got {self.start!r}")
        if self.stop is not None and self.stop <= self.start:
            raise ConfigError(
                f"partition must heal after it starts: start={self.start!r} "
                f"stop={self.stop!r} (use null for a permanent partition)"
            )
        if not self.groups:
            raise ConfigError("partition needs at least one group of pids")
        side: dict = {}
        for index, group in enumerate(self.groups):
            if not group:
                raise ConfigError("partition groups must not be empty")
            for pid in group:
                if isinstance(pid, bool) or not isinstance(pid, int):
                    raise ConfigError(f"partition pids must be ints, got {pid!r}")
                if pid in side:
                    raise ConfigError(f"pid {pid} appears in two partition groups")
                side[pid] = index
        # Precomputed pid -> group index: severs() runs once per frame
        # per partition at the dispatch chokepoint.  Not a dataclass
        # field, so equality/hash stay derived from the spec alone.
        object.__setattr__(self, "_side", side)

    def active(self, now: float) -> bool:
        return now >= self.start and (self.stop is None or now < self.stop)

    def severs(self, src: int, dst: int) -> bool:
        """True when this partition (if active) separates ``src`` and ``dst``."""
        return self._side.get(src, -1) != self._side.get(dst, -1)


#: Keys a ``link`` spec may carry beyond the LinkModel fields.
_LAYER_KEYS = ("retransmit", "rto", "max_retries")


@dataclass(frozen=True)
class NetemConfig:
    """Everything the transports need to emulate one adverse network.

    ``retransmit`` enables the sequence-number/ack layer
    (:class:`~repro.netem.reliable.ReliableLink`) that makes correct
    peers eventually deliver under loss; ``rto`` is its retransmission
    scan interval in modeled seconds and ``max_retries`` bounds resends
    of a single frame (a peer that never acknowledges — crashed, or
    partitioned away forever — must not be retried eternally).
    """

    model: LinkModel = field(default_factory=LinkModel)
    partitions: Tuple[Partition, ...] = ()
    retransmit: bool = True
    rto: float = 0.05
    max_retries: int = 50

    def __post_init__(self) -> None:
        if self.rto <= 0:
            raise ConfigError(f"rto must be positive, got {self.rto!r}")
        if self.max_retries < 1:
            raise ConfigError(
                f"max_retries must be at least 1, got {self.max_retries!r}"
            )
        # retransmit=False together with loss/partitions is legal:
        # breakage experiments want to show non-convergence.

    @classmethod
    def from_spec(
        cls,
        link: Optional[Mapping[str, Any]] = None,
        partitions: Optional[Sequence[Any]] = None,
    ) -> Optional["NetemConfig"]:
        """Build a config from the scenario-file shape; ``None`` = netem off.

        ``link`` is a flat mapping of :class:`LinkModel` fields plus the
        layer knobs (``retransmit``, ``rto``, ``max_retries``);
        ``partitions`` is a sequence of ``{"start", "stop", "groups"}``
        mappings.  Unknown keys and invalid values raise
        :class:`~repro.errors.ConfigError`.
        """
        link = dict(link or {})
        partition_specs = list(partitions or ())
        if not link and not partition_specs:
            return None

        model_names = {f.name for f in fields(LinkModel)}
        unknown = sorted(set(link) - model_names - set(_LAYER_KEYS))
        if unknown:
            raise ConfigError(
                f"unknown link field(s) {unknown}; known fields: "
                f"{sorted(model_names | set(_LAYER_KEYS))}"
            )
        retransmit = link.pop("retransmit", True)
        if not isinstance(retransmit, bool):
            raise ConfigError(
                f"link field 'retransmit' must be a bool, got {retransmit!r}"
            )
        rto = _number(link, "rto", link.pop("rto", 0.05))
        max_retries = link.pop("max_retries", 50)
        if isinstance(max_retries, bool) or not isinstance(max_retries, int):
            raise ConfigError(
                f"link field 'max_retries' must be an int, got {max_retries!r}"
            )
        model = LinkModel(**{k: _number(link, k, v) for k, v in link.items()})
        return cls(
            model=model,
            partitions=tuple(_parse_partition(p) for p in partition_specs),
            retransmit=retransmit,
            rto=rto,
            max_retries=max_retries,
        )

    def validate_pids(self, n: int) -> None:
        """Check every partitioned pid against the system size."""
        for partition in self.partitions:
            for group in partition.groups:
                for pid in group:
                    if not 0 <= pid < n:
                        raise ConfigError(
                            f"partition pid {pid} out of range for n={n}"
                        )


def _parse_partition(spec: Any) -> Partition:
    if isinstance(spec, Partition):
        return spec
    if not isinstance(spec, Mapping):
        raise ConfigError(
            f"partition spec must be a mapping with start/stop/groups, got {spec!r}"
        )
    table = dict(spec)
    unknown = sorted(set(table) - {"start", "stop", "groups"})
    if unknown:
        raise ConfigError(f"unknown partition field(s) {unknown}")
    if "groups" not in table:
        raise ConfigError(f"partition spec needs 'groups': {spec!r}")
    groups = table["groups"]
    if not isinstance(groups, (list, tuple)):
        raise ConfigError(f"partition groups must be a list of pid lists: {groups!r}")
    parsed_groups: List[Tuple[int, ...]] = []
    for group in groups:
        if not isinstance(group, (list, tuple)):
            raise ConfigError(f"each partition group must be a pid list: {group!r}")
        parsed_groups.append(tuple(group))
    start = table.get("start", 0.0)
    stop = table.get("stop", None)
    if isinstance(start, bool) or not isinstance(start, (int, float)):
        raise ConfigError(f"partition start must be a number, got {start!r}")
    if stop is not None and (isinstance(stop, bool) or not isinstance(stop, (int, float))):
        raise ConfigError(f"partition stop must be a number or null, got {stop!r}")
    return Partition(
        start=float(start),
        stop=None if stop is None else float(stop),
        groups=tuple(parsed_groups),
    )


def partition_to_spec(partition: Partition) -> Dict[str, Any]:
    """The JSON-facing shape of one partition (inverse of parsing)."""
    return {
        "start": partition.start,
        "stop": partition.stop,
        "groups": [list(group) for group in partition.groups],
    }


__all__ = [
    "LinkModel",
    "NetemConfig",
    "Partition",
    "partition_to_spec",
]
