"""Seeded per-link delivery decisions, shared by every transport.

:class:`LinkPolicy` is the one place a frame's fate is decided.  Both
runtime fabrics consult it at their send/dispatch chokepoint —
:meth:`repro.runtime.transport.LocalHub.dispatch` for in-process queues,
:meth:`repro.runtime.tcp.TcpTransport.send` for sockets — so a scenario's
``link``/``partitions`` spec means exactly the same thing on either.

Determinism: each directed link draws from its own named stream of the
policy's :class:`~repro.sim.rng.SplitRng` (``("link", src, dst)``), so
the verdict sequence on a link depends only on the seed and on that
link's own frame order — never on how the event loop interleaved other
links.  The per-frame draw order is fixed (loss, duplicate, then per-copy
jitter/reorder), which keeps a link's stream aligned frame-for-frame
across runs.

The policy also owns the per-link counters (frames, dropped by loss,
dropped by partition, delayed, duplicated, reordered) that the cluster
aggregates into ``RunResult.meta["netem"]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..sim.rng import SplitRng, derive_seed
from ..types import ProcessId
from .models import NetemConfig


@dataclass
class LinkCounters:
    """What one directed link did to its traffic."""

    frames: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    delayed: int = 0
    duplicated: int = 0
    reordered: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_loss + self.dropped_partition

    def as_dict(self) -> Dict[str, int]:
        return {
            "frames": self.frames,
            "dropped": self.dropped,
            "dropped_loss": self.dropped_loss,
            "dropped_partition": self.dropped_partition,
            "delayed": self.delayed,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
        }

    def merge(self, other: "LinkCounters") -> None:
        self.frames += other.frames
        self.dropped_loss += other.dropped_loss
        self.dropped_partition += other.dropped_partition
        self.delayed += other.delayed
        self.duplicated += other.duplicated
        self.reordered += other.reordered


@dataclass(frozen=True)
class Delivery:
    """One frame's fate: dropped, or delivered as one delay per copy."""

    dropped: bool = False
    reason: str = ""  # "loss" | "partition" when dropped
    delays: Tuple[float, ...] = (0.0,)


_PASS = Delivery()


class LinkPolicy:
    """Frame-by-frame link conditions for one cluster run.

    >>> policy = LinkPolicy(4, NetemConfig.from_spec({"loss": 0.2}), seed=7)
    >>> policy.plan(0, 1, now=0.0)      # doctest: +SKIP
    Delivery(dropped=False, reason='', delays=(0.0,))
    """

    def __init__(
        self,
        n: int,
        config: NetemConfig,
        seed: int = 0,
        observer: Optional[Any] = None,
    ):
        config.validate_pids(n)
        self.n = n
        self.config = config
        self._rng = SplitRng(derive_seed(seed, "netem"))
        self.links: Dict[Tuple[ProcessId, ProcessId], LinkCounters] = {}
        #: Optional structured-event hub; adverse verdicts (drops,
        #: duplicates, reorders) become ``netem`` events.  Never draws
        #: from the streams, so observing cannot move a run's verdicts.
        self.observer = observer

    def _verdict(self, src: ProcessId, dst: ProcessId, verdict: str, now: float) -> None:
        if self.observer is not None:
            self.observer.emit(
                "netem", node=src,
                detail={"link": f"{src}->{dst}", "verdict": verdict},
                time=now,
            )

    def _counters(self, src: ProcessId, dst: ProcessId) -> LinkCounters:
        counters = self.links.get((src, dst))
        if counters is None:
            counters = self.links[(src, dst)] = LinkCounters()
        return counters

    def severed(self, src: ProcessId, dst: ProcessId, now: float) -> bool:
        """True while an active scripted partition severs ``src -> dst``.

        Read-only (no counters, no stream draws): the retransmission
        layer uses it to pause resends — and stop charging the retry
        budget — while a partition is provably the reason a frame cannot
        get through.
        """
        if src == dst:
            return False
        return any(
            p.active(now) and p.severs(src, dst)
            for p in self.config.partitions
        )

    def plan(self, src: ProcessId, dst: ProcessId, now: float) -> Delivery:
        """Decide the fate of one frame from ``src`` to ``dst`` at ``now``."""
        if src == dst:  # self-delivery never crosses the network
            return _PASS
        model = self.config.model
        counters = self._counters(src, dst)
        counters.frames += 1

        for partition in self.config.partitions:
            if partition.active(now) and partition.severs(src, dst):
                counters.dropped_partition += 1
                self._verdict(src, dst, "dropped_partition", now)
                return Delivery(dropped=True, reason="partition")

        stream = self._rng.stream("link", src, dst)
        if model.loss and stream.random() < model.loss:
            counters.dropped_loss += 1
            self._verdict(src, dst, "dropped_loss", now)
            return Delivery(dropped=True, reason="loss")

        copies = 1
        if model.duplicate and stream.random() < model.duplicate:
            copies = 2
            counters.duplicated += 1
            self._verdict(src, dst, "duplicated", now)

        if model.idle:
            return _PASS
        delays = []
        held_back = False
        for _ in range(copies):
            delay = model.delay
            if model.jitter:
                delay += stream.uniform(0.0, model.jitter)
            if model.reorder and stream.random() < model.reorder:
                delay += model.reorder_extra
                held_back = True
            delays.append(delay)
        # Counters are per *frame*, like every other counter here — a
        # duplicated frame whose copies are both held back counts once.
        if held_back:
            counters.reordered += 1
            self._verdict(src, dst, "reordered", now)
        if any(delay > 0 for delay in delays):
            counters.delayed += 1
        return Delivery(delays=tuple(delays))

    # -- aggregation ---------------------------------------------------------

    def totals(self) -> LinkCounters:
        total = LinkCounters()
        for counters in self.links.values():
            total.merge(counters)
        return total

    def per_link(self) -> Dict[str, Dict[str, int]]:
        """Per-link counters keyed ``"src->dst"``, links with traffic only."""
        return {
            f"{src}->{dst}": counters.as_dict()
            for (src, dst), counters in sorted(self.links.items())
            if counters.frames
        }


__all__ = ["Delivery", "LinkCounters", "LinkPolicy"]
