"""Wire dataclasses of the retransmission layer.

Kept in a leaf module (no imports beyond the standard library) so the
runtime codec can register them as built-in wire types without pulling
in the transport layer — :mod:`repro.netem.reliable` holds the logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class LinkFrame:
    """One retransmittable payload: per-(sender, destination) sequence."""

    seq: int
    inner: Any

    def __post_init__(self) -> None:
        if isinstance(self.seq, bool) or not isinstance(self.seq, int) or self.seq < 0:
            raise ValueError(f"link sequence must be a non-negative int: {self.seq!r}")


@dataclass(frozen=True)
class LinkAck:
    """Receipt for ``LinkFrame(seq)`` on the reverse link."""

    seq: int

    def __post_init__(self) -> None:
        if isinstance(self.seq, bool) or not isinstance(self.seq, int) or self.seq < 0:
            raise ValueError(f"link ack sequence must be a non-negative int: {self.seq!r}")


__all__ = ["LinkAck", "LinkFrame"]
