"""Clocks that drive netem delays and retransmission timers.

Every time-dependent piece of the netem subsystem — delayed delivery,
partition windows, the retransmission scan — reads time and sleeps
through one of these two clocks rather than touching the wall clock
directly:

* :class:`WallClock` is real time (``loop.time`` / ``asyncio.sleep``),
  used on the ``tcp`` fabric where frames cross genuine sockets and
  latency realism matters more than replayability.
* :class:`TickClock` is a deterministic virtual clock for the ``local``
  fabric: one tick elapses per event-loop pass, and sleepers are woken
  in strict ``(due tick, registration order)`` order.  Because nothing
  consults the wall clock, two runs of the same seeded scenario execute
  the exact same interleaving — delayed frames, retransmissions,
  partition heals and all — which is what makes lossy local runs
  reproducible enough to use in regression tests.

The tick driver advances unconditionally from :meth:`TickClock.start`
until :meth:`TickClock.close` — not only while sleepers exist.
Partition timelines are read off ``now()`` by code that never sleeps
(the dispatch chokepoint), so a clock that idled without sleepers would
freeze modeled time and a scripted partition could never heal.  One
tick models :attr:`TickClock.resolution` seconds (1 ms by default), so
a scenario's ``delay``/``rto``/partition times mean the same *modeled*
thing on both fabrics even though local runs compress them onto
scheduler passes.
"""

from __future__ import annotations

import asyncio
import heapq
import math
from typing import List, Optional, Protocol, Tuple


class Clock(Protocol):
    """The surface netem components program against."""

    def now(self) -> float: ...

    async def sleep(self, seconds: float) -> None: ...

    def start(self) -> None: ...

    async def close(self) -> None: ...


class WallClock:
    """Real time, zeroed at :meth:`start` so partition scripts are
    relative to the moment traffic can first flow (the cluster starts
    the clock *after* binding and connecting its transports — setup
    latency must not eat into a scripted window)."""

    def __init__(self) -> None:
        self._zero: Optional[float] = None

    def now(self) -> float:
        if self._zero is None:
            return 0.0
        return asyncio.get_running_loop().time() - self._zero

    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(seconds)

    def start(self) -> None:
        if self._zero is None:
            self._zero = asyncio.get_running_loop().time()

    async def close(self) -> None:
        pass


class TickClock:
    """Deterministic virtual clock: one tick per event-loop pass."""

    def __init__(self, resolution: float = 0.001):
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution!r}")
        self.resolution = resolution
        self._ticks = 0
        self._seq = 0
        self._waiters: List[Tuple[int, int, asyncio.Future]] = []
        self._closed = False
        self._driver: Optional[asyncio.Task] = None

    def now(self) -> float:
        return self._ticks * self.resolution

    async def sleep(self, seconds: float) -> None:
        if self._closed:
            return
        # Every sleep waits at least one tick so a zero-ish delay still
        # yields — matching the hub's own cooperative-yield discipline.
        ticks = max(1, math.ceil(seconds / self.resolution - 1e-9))
        future = asyncio.get_running_loop().create_future()
        self._seq += 1
        heapq.heappush(self._waiters, (self._ticks + ticks, self._seq, future))
        await future

    def start(self) -> None:
        if self._driver is None:
            self._driver = asyncio.ensure_future(self._drive())

    async def _drive(self) -> None:
        # Ticks elapse whether or not anyone is sleeping: partition
        # timelines are read off now() by non-sleeping code, so an
        # idle-parking clock would freeze modeled time and a scripted
        # window could never open or heal.
        while not self._closed:
            self._ticks += 1
            while self._waiters and self._waiters[0][0] <= self._ticks:
                _due, _seq, future = heapq.heappop(self._waiters)
                if not future.done():  # a cancelled sleeper just drops out
                    future.set_result(None)
            # One tick per pass of the ready queue: everything woken this
            # tick runs before the next tick can elapse.
            await asyncio.sleep(0)

    async def close(self) -> None:
        self._closed = True
        if self._driver is not None:
            self._driver.cancel()
            try:
                await self._driver
            except asyncio.CancelledError:
                pass
            self._driver = None
        while self._waiters:
            _due, _seq, future = heapq.heappop(self._waiters)
            if not future.done():
                future.cancel()


__all__ = ["Clock", "TickClock", "WallClock"]
