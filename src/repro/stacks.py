"""Fabric-agnostic protocol stack plans.

A :class:`ProtocolPlan` captures *what* runs on each process — the
protocol choice (Bracha, Ben-Or and its crash variant, MMR-14, ACS),
per-instance coin schemes, and multi-instance batching — without caring
*where* it runs.  The discrete-event simulator (the scenario runner's
``sim`` fabric) and the asyncio runtime cluster both assemble their
per-process stacks through the same plan, so a configuration executes
byte-for-byte the same protocol code on every fabric and the results
are comparable stack-for-stack.

The plan builds onto a :class:`~repro.sim.process.Process`, which is
happy on either world's network (anything satisfying
:class:`~repro.sim.network.NetworkAPI`).  The stacks a plan assembles
are sans-I/O engines: their sends are effects drained from the process
outbox by whichever driver hosts them (see :mod:`repro.sim.effects`),
so fabric-level concerns — the scenario's ``batching`` field included —
are applied entirely by the driver, never by protocol code.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Union

from .adversary.behaviors import ByzantineBehavior, dispatch_behavior
from .analysis.experiments import FaultSpec, make_coin, normalize_proposals
from .app.acs import AcsInstance
from .baselines.benor import BenOrConsensus
from .baselines.harness import STACKS
from .core.broadcast import BroadcastLayer
from .core.coin import CoinScheme, LocalCoin
from .core.consensus import BrachaConsensus
from .errors import ConfigError
from .params import ProtocolParams
from .sim.network import NetworkAPI
from .sim.process import Process, ProtocolModule
from .sim.rng import derive_seed
from .types import ProcessId

PROTOCOLS = ("bracha", "benor", "benor-crash", "mmr14", "acs")

#: Builds the per-process protocol stack; returns the decision-bearing
#: modules (one per instance), or the ACS instance.
StackBuilder = Callable[[Process], List[Any]]


def instance_coin_seed(seed: int, index: int) -> int:
    """The derived seed of consensus instance ``index``'s coin scheme.

    One rule, used both when a plan builds its coins in-process and when
    the multi-process dealer (:mod:`repro.mp.bundle`) materialises the
    same setup into per-node bundle files — a node can therefore check a
    bundle's coin material against the scenario it claims to serve.
    """
    return derive_seed(seed, "inst-coin", index)


def coin_seeds(protocol: str, seed: int, instances: int, n: int) -> tuple:
    """Every instance-coin seed a plan derives, in instance order.

    ACS runs one ABA (hence one coin scheme) per node; the other
    protocols run one per parallel instance.
    """
    count = n if protocol == "acs" else instances
    return tuple(instance_coin_seed(seed, i) for i in range(count))


def instance_coin(
    coin: Union[str, CoinScheme], n: int, t: int, seed: int, index: int
) -> CoinScheme:
    """An independent coin scheme for consensus instance ``index``.

    Instance coins must be independent (the ACS construction relies on
    it), so string specs are re-derived per instance; explicit scheme
    objects are only accepted for a single instance.
    """
    if isinstance(coin, CoinScheme):
        if index > 0:
            raise ConfigError("pass a coin *name* when running multiple instances")
        return coin
    if coin == "local":
        return LocalCoin(salt=("inst", index)) if index else LocalCoin()
    return make_coin(coin, n, t, instance_coin_seed(seed, index))


class ProtocolPlan:
    """How to build, propose to, and read out one protocol choice."""

    def __init__(
        self,
        protocol: str,
        params: ProtocolParams,
        coin: Union[str, CoinScheme],
        seed: int,
        instances: int,
    ):
        if protocol not in PROTOCOLS:
            raise ConfigError(
                f"unknown protocol {protocol!r}; choose from {sorted(PROTOCOLS)}"
            )
        if instances < 1:
            raise ConfigError(f"need at least one instance, got {instances}")
        if instances > 1 and protocol not in ("bracha", "benor"):
            raise ConfigError(f"multiple instances are not supported for {protocol!r}")
        if coin == "shares" and (instances > 1 or protocol == "acs"):
            # Each share-coin attaches a module under one id; parallel
            # instances would collide.  Salted local / dealer coins give
            # the independence parallel instances need.
            raise ConfigError(
                "the share-based coin supports a single instance; "
                "use 'local' or 'dealer' for parallel instances and ACS"
            )
        self.protocol = protocol
        self.params = params
        self.instances = instances
        n, t = params.n, params.t
        if protocol == "acs":
            # One coin scheme per ABA index, shared by every node —
            # the same assembly on every fabric.
            self._acs_coins = [
                instance_coin(coin, n, t, seed, j) for j in range(n)
            ]
        else:
            self._coins = [
                instance_coin(coin, n, t, seed, i) for i in range(instances)
            ]

    # -- builders ------------------------------------------------------------

    def build(self, process: Process) -> List[Any]:
        """Install the stack on ``process``; return decision modules."""
        if self.protocol == "acs":
            rbc = BroadcastLayer()
            process.add_module(rbc)
            acs = AcsInstance(
                process, rbc, coin_factory=lambda j: self._acs_coins[j]
            )
            return [acs]
        if self.instances == 1:
            # Single instance: the simulator harness's own stack builder,
            # so every fabric assembles byte-for-byte the same stack.
            return [STACKS[self.protocol](process, self._coins[0])]
        if self.protocol == "bracha":
            rbc = BroadcastLayer()
            process.add_module(rbc)
            modules = []
            for i in range(self.instances):
                consensus = BrachaConsensus(
                    rbc, self._coins[i].attach(process), module_id=f"bracha-{i}"
                )
                process.add_module(consensus)
                modules.append(consensus)
            return modules
        # benor (the only other multi-instance protocol, guarded above)
        modules = []
        for i in range(self.instances):
            consensus = BenOrConsensus(
                self._coins[i].attach(process), module_id=f"benor-{i}"
            )
            process.add_module(consensus)
            modules.append(consensus)
        return modules

    def propose(self, modules: List[Any], pid: ProcessId, proposal: Any) -> None:
        if self.protocol == "acs":
            modules[0].propose(proposal)
        else:
            for module in modules:
                module.propose(proposal)

    def default_proposals(self, proposals: Any = None) -> Dict[ProcessId, Any]:
        """The proposal table every fabric uses for this plan.

        ACS proposes per-node request payloads; the binary protocols
        normalize ``proposals`` through the harness rules.
        """
        if self.protocol == "acs":
            return {pid: f"req-p{pid}" for pid in range(self.params.n)}
        return normalize_proposals(proposals, self.params.n)

    # -- readouts ------------------------------------------------------------

    def decided(self, modules: List[Any]) -> bool:
        if self.protocol == "acs":
            return modules[0].done
        return all(m.decided for m in modules)

    def halted(self, modules: List[Any]) -> bool:
        if self.protocol == "acs":
            return modules[0].done
        return all(m.halted for m in modules)


class PlanProposer(ProtocolModule):
    """Start-time proposer covering every instance of a plan's stack.

    Behaviors wrapping honest stacks (crash, two-faced) cannot be told
    to propose from outside, so the proposal is injected by a module's
    ``start()`` hook — on every fabric alike.
    """

    def __init__(self, modules: List[Any], plan: ProtocolPlan, bit: Any):
        tag = getattr(modules[0], "module_id", plan.protocol)
        super().__init__(f"_proposer-{tag}")
        self._modules = modules
        self._plan = plan
        self._bit = bit

    def start(self) -> None:
        self._plan.propose(self._modules, -1, self._bit)

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        pass


def build_plan_behavior(
    pid: ProcessId,
    spec: FaultSpec,
    network: NetworkAPI,
    params: ProtocolParams,
    plan: ProtocolPlan,
    proposals: Dict[ProcessId, Any],
) -> ByzantineBehavior:
    """Build a Byzantine behavior whose honest faces run the plan's stack.

    The returned behavior is *not* registered with the network; the
    caller owns that (the simulator registers it directly, the runtime
    wraps it in a node).
    """

    def honest_factory(process: Process, bit: Any) -> None:
        modules = plan.build(process)
        process.add_module(PlanProposer(modules, plan, bit))

    return dispatch_behavior(
        pid, spec, network, params, honest_factory, proposals[pid]
    )


__all__ = [
    "PROTOCOLS",
    "PlanProposer",
    "ProtocolPlan",
    "StackBuilder",
    "build_plan_behavior",
    "coin_seeds",
    "instance_coin",
    "instance_coin_seed",
]
