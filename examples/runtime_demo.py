#!/usr/bin/env python3
"""Runtime demo: one declarative scenario on three execution fabrics.

Builds a single :class:`repro.scenario.Scenario` — Bracha, n=4, one
silent fault — and executes the *same object* under

1. the discrete-event simulator,
2. the asyncio in-process transport,
3. authenticated JSON-over-TCP on localhost,

printing the decision and cost of each — same protocol modules, same
safety checks, three very different notions of "the network".

    python examples/runtime_demo.py [seed]
"""

import sys

from repro.scenario import Scenario, run


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    # Correct processes are unanimous, so strong validity pins the
    # decision and all three fabrics must produce the same value — a
    # scheduling-independent fact worth asserting in a demo.
    scenario = Scenario(
        name="runtime-demo",
        protocol="bracha",
        n=4,
        proposals=[1, 1, 1, 0],
        faults={3: "silent"},
        seed=seed,
    )

    print("=== one scenario, three fabrics ===")
    print(f"system: {scenario.params.describe()}")
    print(f"inputs: p0=p1=p2=1, p3 silent-Byzantine, seed={seed}")
    print(f"spec  : {scenario.to_dict()}")
    print()

    sim = run(scenario)  # fabric defaults to "sim"
    print(f"simulator : decision {sorted(sim.decided_values)}, "
          f"{sim.messages_sent} messages, {sim.steps} delivery steps")

    local = run(scenario, fabric="local")
    print(f"asyncio   : decision {sorted(local.decided_values)}, "
          f"{local.messages_sent} messages, "
          f"{local.virtual_time * 1000:.1f} ms wall time")

    tcp = run(scenario, fabric="tcp")
    rejected = tcp.metrics.counter("frames_rejected")
    print(f"tcp (MACs): decision {sorted(tcp.decided_values)}, "
          f"{tcp.messages_sent} messages, "
          f"{tcp.virtual_time * 1000:.1f} ms wall time, "
          f"{rejected} frames rejected")

    print()
    values = sim.decided_values | local.decided_values | tcp.decided_values
    assert len(values) == 1, values
    print(f"all three fabrics agree on {values.pop()} — "
          "every run passed agreement + validity checks")


if __name__ == "__main__":
    main()
