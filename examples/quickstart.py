#!/usr/bin/env python3
"""Quickstart: one Byzantine consensus run, narrated.

Runs Bracha's protocol with four processes, one of them two-faced
Byzantine, and prints what happened — the decision, who decided in which
round, and where the messages went.

    python examples/quickstart.py [seed]
"""

import sys

from repro import run_consensus
from repro.params import for_system


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7

    n = 4
    params = for_system(n)
    print("=== Bracha 1984: asynchronous Byzantine consensus ===")
    print(f"system: {params.describe()}")
    print(f"inputs: p0=0 p1=1 p2=1, p3 is Byzantine (two-faced)")
    print()

    result = run_consensus(
        n=n,
        proposals=[0, 1, 1, 0],
        faults={3: "two_faced"},
        seed=seed,
    )

    decision = result.decided_values.pop()
    print(f"decision: {decision}  (proposed by a correct process: yes — "
          "the harness checks strong validity)")
    for pid, dec in sorted(result.decisions.items()):
        print(f"  p{pid} decided {dec.value} in round {dec.round}")
    print()
    print(f"rounds executed : {result.rounds}")
    print(f"messages sent   : {result.messages_sent}")
    print(f"delivery steps  : {result.steps}")
    print("message breakdown:")
    for kind, count in sorted(result.meta["messages_by_kind"].items()):
        print(f"  {kind:<22} {count}")
    print()
    print("Try different seeds — the schedule changes, the agreement does not.")


if __name__ == "__main__":
    main()
