#!/usr/bin/env python3
"""Grid experiments with the sweep API.

Declares a grid over system size, coin scheme, and fault load, runs a
seeded batch of safety-checked executions per cell, and prints the
aggregate tables — the workflow for anyone using this library to study
a configuration space rather than a single run.

    python examples/parameter_sweep.py [trials]
"""

import sys

from repro.analysis.sweeps import Sweep


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    print("=== Sweep 1: system size × coin (split inputs) ===\n")
    sweep = Sweep(trials=trials, seed=2024)
    sweep.add("n", [4, 7, 10])
    sweep.add("coin", ["local", "dealer"])
    grid = sweep.run()
    print(grid.table(metric="rounds"))
    print()
    print(grid.table(metric="messages"))
    best = grid.best("messages")
    print(f"\ncheapest cell: {best.label} "
          f"({best.metric('messages').mean:.0f} messages on average)\n")

    print("=== Sweep 2: fault load at n=7 (t=2), dealer coin ===\n")
    fault_grid = (
        Sweep(trials=trials, seed=7, base={"n": 7, "coin": "dealer"})
        .add("faults", [
            {},
            {6: "silent"},
            {5: "silent", 6: "silent"},
            {5: "two_faced", 6: "two_faced"},
        ])
        .run()
    )
    # The faults column renders as dicts; summarize by hand for brevity.
    for cell in fault_grid.cells:
        kinds = sorted(
            spec if isinstance(spec, str) else spec["kind"]
            for spec in cell.label["faults"].values()
        )
        rounds = cell.metric("rounds")
        steps = cell.metric("steps")
        print(f"  faults={kinds or ['none']!s:<28} "
              f"rounds {rounds.mean:.2f}  steps {steps.mean:,.0f}")

    print("\nEvery cell above ran through the checked harness: zero safety")
    print("violations across the whole grid, or this script would have raised.")


if __name__ == "__main__":
    main()
