#!/usr/bin/env python3
"""Grid experiments with the declarative scenario API.

Declares grids of :class:`repro.scenario.Scenario` fields — system
size, coin scheme, fault load, even the execution fabric — runs a
seeded batch of safety-checked executions per cell, and prints the
aggregate tables.  Experiments are *data*: each cell is a frozen
scenario you could equally serialize to JSON and hand to
``repro run``.

    python examples/parameter_sweep.py [trials]
"""

import sys

from repro.scenario import Scenario, ScenarioGrid


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    print("=== Grid 1: system size × coin (split inputs) ===\n")
    grid = ScenarioGrid(Scenario(protocol="bracha"), trials=trials, seed=2024)
    grid.add("n", [4, 7, 10])
    grid.add("coin", ["local", "dealer"])
    result = grid.run()
    print(result.table(metric="rounds"))
    print()
    print(result.table(metric="messages"))
    best = result.best("messages")
    print(f"\ncheapest cell: {best.label} "
          f"({best.metric('messages').mean:.0f} messages on average)\n")

    print("=== Grid 2: fault load at n=7 (t=2), dealer coin ===\n")
    fault_grid = (
        ScenarioGrid(Scenario(n=7, coin="dealer"), trials=trials, seed=7)
        .add("faults", [
            {},
            {6: "silent"},
            {5: "silent", 6: "silent"},
            {5: "two_faced", 6: "two_faced"},
        ])
        .run()
    )
    # The faults column renders as dicts; summarize by hand for brevity.
    for cell in fault_grid.cells:
        kinds = sorted(
            spec if isinstance(spec, str) else spec["kind"]
            for spec in cell.label["faults"].values()
        )
        rounds = cell.metric("rounds")
        steps = cell.metric("steps")
        print(f"  faults={kinds or ['none']!s:<28} "
              f"rounds {rounds.mean:.2f}  steps {steps.mean:,.0f}")

    print("\n=== Grid 3: the same cell on two fabrics (sim vs asyncio) ===\n")
    fabric_grid = (
        ScenarioGrid(Scenario(n=4, proposals=1), trials=max(2, trials // 4),
                     seed=11)
        .add("fabric", ["sim", "local"])
        .run()
    )
    print(fabric_grid.table(metric="messages"))

    print("\nEvery cell above ran through the checked harness: zero safety")
    print("violations across the whole grid, or this script would have raised.")


if __name__ == "__main__":
    main()
