#!/usr/bin/env python3
"""A replicated log over repeated asynchronous common subsets.

Four replicas (one of them crash-prone if requested) each submit a
stream of commands; epochs of the ACS construction — n reliable
broadcasts + n parallel Bracha agreements — commit identical batches on
every replica, in the same order.  This is HoneyBadgerBFT's core loop
running on the 1984 protocol it descends from.

    python examples/replicated_log.py [epochs] [--crash]
"""

import sys

from repro.app import ReplicatedLog
from repro.core.broadcast import BroadcastLayer
from repro.core.coin import LocalCoin
from repro.params import for_system
from repro.sim.process import Process
from repro.sim.runner import Simulation
from repro.adversary.behaviors import SilentBehavior


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    epochs = int(args[0]) if args else 2
    crash = "--crash" in sys.argv

    n = 4
    params = for_system(n)
    sim = Simulation(seed=2024)
    logs = []
    for pid in range(n):
        if crash and pid == n - 1:
            sim.network.register(SilentBehavior(pid, sim.network, params))
            print(f"p{pid}: crashed from the start")
            continue
        process = Process(pid, sim.network, params)
        rbc = process.add_module(BroadcastLayer())
        log = ReplicatedLog(
            process, rbc,
            coin_factory_for_epoch=lambda e, j: LocalCoin(salt=("log", e, j)),
            batch_size=3,
        )
        for i in range(3 * epochs):
            log.submit(f"set x{pid}.{i}")
        logs.append(log)

    sim.start()
    for log in logs:
        log.start(max_epochs=epochs)
    sim.run(
        until=lambda: all(l.epochs_committed >= epochs for l in logs),
        max_steps=10_000_000,
    )

    print(f"\ncommitted {epochs} epochs with {sim.metrics.sent} messages "
          f"in {sim.steps} delivery steps\n")

    reference = logs[0].committed_commands()
    for replica_index, log in enumerate(logs):
        agree = "identical" if log.committed_commands() == reference else "DIVERGED"
        print(f"replica {replica_index}: {len(log.log)} entries, {agree}")

    print("\nthe log, as every replica sees it:")
    for entry in logs[0].log:
        print(f"  epoch {entry.epoch}  p{entry.proposer}[{entry.index}]  "
              f"{entry.command}")

    assert all(l.committed_commands() == reference for l in logs)
    print("\nall replicas agree on the complete history.")


if __name__ == "__main__":
    main()
