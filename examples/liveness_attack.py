#!/usr/bin/env python3
"""Why validation matters: a working disagreement attack on Ben-Or.

This script replays the scripted equivocation attack from
``repro.adversary.benor_attack`` — the adversary forges a decide quorum
toward one process and steers the others to the opposite value — against
Ben-Or (PODC 1983) at n=4, t=1, which is *outside* its ``n > 5t``
Byzantine envelope.  It then shows the identical forged message dying in
Bracha's validation layer.

    python examples/liveness_attack.py [trials]
"""

import sys

from repro.adversary.benor_attack import run_benor_equivocation_attack
from repro.core.validation import StepValidator
from repro.params import ProtocolParams
from repro.types import Step, StepValue


def attack_benor(trials: int) -> None:
    print("=== Part 1: Ben-Or at n=4, t=1 (outside its n>5t envelope) ===")
    print("The adversary equivocates its phase-2 proposal: P(1) to p0,")
    print("P(⊥) to p1/p2, then waits for their local coins to land 0.\n")
    wins = 0
    for seed in range(trials):
        report = run_benor_equivocation_attack(seed)
        mark = ""
        if report.outcome == "disagreement":
            wins += 1
            mark = "  <-- AGREEMENT VIOLATED"
        decisions = " ".join(
            f"p{pid}={'·' if bit is None else bit}"
            for pid, bit in sorted(report.decisions.items())
        )
        print(f"seed {seed:>2}: coins={report.coin_bits}  {decisions:<18} "
              f"{report.outcome}{mark}")
    print(f"\n{wins}/{trials} seeds end in disagreement "
          "(≈1/4 expected: the victims' coins must both land 0).")
    print("The adversary retries every round, so against Ben-Or it wins "
          "eventually.\n")


def show_bracha_defense() -> None:
    print("=== Part 2: the same forgery against Bracha's validation ===")
    params = ProtocolParams(4, 1)
    validator = StepValidator(params)
    print("Honest history: step-1 votes 1,1,0 — step-2 echoes them.")
    for pid, bit in ((0, 1), (1, 1), (2, 0)):
        validator.add(1, Step.ONE, pid, StepValue(bit))
    for pid, bit in ((0, 1), (1, 1), (2, 0)):
        validator.add(1, Step.TWO, pid, StepValue(bit))
    print("Byzantine p3 now 'sends' the decide-proposal (d,1) that beat "
          "Ben-Or...")
    validator.add(1, Step.THREE, 3, StepValue(1, decide=True))
    print(f"  validated step-3 messages : {validator.validated_count(1, Step.THREE)}")
    print(f"  held in the pending pool  : {validator.pending_count(1, Step.THREE)}")
    print(f"  decide support            : {validator.decide_support(1)}")
    print()
    print("A decide-proposal for 1 needs a >n/2 majority of *validated*")
    print("step-2 messages (3 of 4).  Only two exist, and reliable broadcast")
    print("stops p3 from manufacturing more.  The forgery waits forever;")
    print("no correct process ever counts it.  That one pending message is")
    print("the distance between t<n/5 and the optimal t<n/3.")


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    attack_benor(trials)
    show_bracha_defense()


if __name__ == "__main__":
    main()
