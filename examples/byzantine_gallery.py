#!/usr/bin/env python3
"""A gallery of adversaries, all losing.

Runs Bracha's protocol at maximum resilience against every fault
behavior and adversarial scheduler in the library, one combination per
row.  The point of the table is its rightmost column: agreement and
validity hold in every single row — the adversary can only buy delay.

    python examples/byzantine_gallery.py [seed]
"""

import sys

from repro import run_consensus
from repro.adversary import (
    CoinRushScheduler,
    DelayVictimScheduler,
    SplitBrainScheduler,
)
from repro.core.coin import DealerCoin


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    n = 7  # t = 2: inject two faults at will

    gallery = [
        ("none", {}, None),
        ("silent ×2", {5: "silent", 6: "silent"}, None),
        ("crash mid-run", {6: {"kind": "crash", "crash_after": 40}}, None),
        ("two-faced ×2", {5: "two_faced", 6: "two_faced"}, None),
        ("fuzzer (p=1.0)", {6: {"kind": "fuzzer", "mutate_p": 1.0, "fanout": 4}}, None),
        ("silent + victim-starve", {6: "silent"},
         lambda coin: DelayVictimScheduler([0], holdback=150)),
        ("two-faced + split-brain", {6: "two_faced"},
         lambda coin: SplitBrainScheduler([0, 1, 2], holdback=150)),
        ("two-faced + coin-rush", {6: "two_faced"},
         lambda coin: CoinRushScheduler(coin, holdback=150)),
    ]

    print(f"=== n={n}, t=2, split inputs, seed {seed} ===\n")
    print(f"{'adversary':<26} {'decision':>8} {'rounds':>6} {'steps':>8} "
          f"{'verdict':>22}")
    for label, faults, scheduler_factory in gallery:
        coin = DealerCoin(n, 2, seed=seed)
        scheduler = scheduler_factory(coin) if scheduler_factory else None
        result = run_consensus(
            n=n,
            proposals=[0, 1, 0, 1, 0, 1, 0],
            coin=coin,
            faults=faults,
            scheduler=scheduler,
            seed=seed,
            max_steps=6_000_000,
        )
        decision = result.decided_values.pop()
        print(f"{label:<26} {decision:>8} {result.decision_round():>6} "
              f"{result.steps:>8} {'agreement + validity ok':>22}")

    print("\nEvery row decided one valid bit. The checked harness raised no")
    print("violation — rerun with any seed; the guarantee is unconditional")
    print("for t < n/3.")


if __name__ == "__main__":
    main()
