#!/usr/bin/env python3
"""Local coins vs the common coin: the Rabin trade.

Bracha's protocol terminates with local coins alone — but the expected
number of rounds depends on every undecided process flipping its way to
the same value.  Rabin's dealer-shared common coin makes each round end
unanimous with probability ≥ 1/2, flattening the round count to O(1).
This script measures both, plus the *distributed* common coin that
reconstructs each round's bit from authenticated Shamir shares.

    python examples/coin_comparison.py [trials]
"""

import sys

from repro import repeat_consensus
from repro.analysis.stats import histogram, summarize


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 20

    print("=== Coin sources on split inputs (the adversarial case) ===\n")
    rows = []
    for coin in ("local", "dealer", "shares"):
        for n in (4, 7):
            results = repeat_consensus(
                trials, n=n, proposals=[pid % 2 for pid in range(n)],
                coin=coin, seed=500 + n, max_steps=6_000_000,
            )
            rounds = [r.decision_round() for r in results]
            messages = [r.messages_sent for r in results]
            rows.append((coin, n, summarize(rounds), summarize(messages)))

    print(f"{'coin':>8} {'n':>3} {'mean rounds':>12} {'max':>4} {'mean msgs':>11}")
    for coin, n, rounds, messages in rows:
        print(f"{coin:>8} {n:>3} {rounds.mean:>12.2f} {rounds.maximum:>4.0f} "
              f"{messages.mean:>11.0f}")

    print("\nround distribution at n=7:")
    for coin in ("local", "dealer"):
        results = repeat_consensus(
            trials, n=7, proposals=[0, 1, 0, 1, 0, 1, 0], coin=coin, seed=507,
        )
        hist = histogram([r.decision_round() for r in results])
        bars = "  ".join(f"r{r}:{'#' * c}" for r, c in hist.items())
        print(f"  {coin:>8}  {bars}")

    print("""
Reading the numbers:
  * 'local'  — the paper's base model; free, private randomness.  Fine
    at small n, but convergence luck thins out as n grows (run the F1/F3
    benchmarks to see n=10 diverge).
  * 'dealer' — Rabin's common coin as an oracle: every round, all
    processes see the same fair bit; expected rounds become constant.
  * 'shares' — the same coin implemented for real: the dealer
    predistributes authenticated Shamir shares (threshold t+1); each
    round costs O(n²) COIN messages to reconstruct, unpredictability
    holds until the first correct process releases its share.""")


if __name__ == "__main__":
    main()
