"""T4 — The resilience boundary: t < n/3 is tight.

Paper claim: ⌊(n−1)/3⌋ is optimal — no asynchronous protocol tolerates
n/3 Byzantine processes.  Regenerates two sides of the boundary at n=10:

* t ≤ 3 injected faults: all trials decide, zero violations;
* 4 colluding two-faced faults (> n/3): the correct processes number
  n−4 = 6 = step quorum−1 … with thresholds sized for t=3 the adversary
  owns every quorum margin, and agreement/validity/liveness failures
  appear (each trial is classified).
"""

from conftest import run_once

from repro import run_consensus
from repro.analysis.tables import format_table

TRIALS = 8
N = 10


def classify(result):
    if any("decided" in v and "never" in v for v in result.violations):
        return "stall"
    if result.violations:
        return "safety"
    if len(result.decided_values) > 1:
        return "disagreement"
    return "ok"


def test_t4_resilience_boundary(benchmark, table_sink, bench_sink):
    def experiment():
        rows = []
        for injected in (0, 1, 2, 3, 4):
            outcomes = {"ok": 0, "stall": 0, "safety": 0, "disagreement": 0}
            for seed in range(TRIALS):
                faults = {
                    N - 1 - i: "two_faced" if i % 2 == 0 else "silent"
                    for i in range(injected)
                }
                result = run_consensus(
                    n=N, proposals=[pid % 2 for pid in range(N)],
                    faults=faults, seed=seed * 7 + injected,
                    check=False, allow_excess_faults=True,
                    max_steps=1_500_000,
                )
                outcomes[classify(result)] += 1
            rows.append([
                injected, f"{'<' if injected <= 3 else '>='} n/3",
                TRIALS, outcomes["ok"], outcomes["stall"],
                outcomes["safety"] + outcomes["disagreement"],
            ])
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "t4_resilience_boundary",
        format_table(
            ["faults injected", "regime", "trials", "ok", "stalls", "safety/validity"],
            rows,
            title="T4. Resilience boundary at n=10 (t=3 optimal): "
                  "clean below n/3, failures at 4 faults",
        ),
    )
    below = [row for row in rows if row[0] <= 3]
    at_boundary = [row for row in rows if row[0] == 4]
    assert all(row[3] == TRIALS for row in below), "within the bound: all ok"
    assert all(row[3] < TRIALS for row in at_boundary), (
        "beyond the bound the adversary must win at least sometimes"
    )
    bench_sink(
        "t4_resilience_boundary",
        {
            "ok_within_bound": sum(row[3] for row in below),
            "failures_beyond_bound": sum(
                TRIALS - row[3] for row in at_boundary
            ),
        },
        meta={"n": N, "trials": TRIALS},
    )
