"""O1 — Tracing & profiling overhead: what observation costs.

The observability layer's overhead stance (docs/observability.md): an
unobserved run pays one ``is None`` check per hot-path event, an
observed run pays causal stamping plus event construction, and a
profiled run additionally pays two ``perf_counter`` reads per span.
This benchmark regenerates the evidence — the same fixed-seed simulator
scenario wall-timed under ``observe: off``, ``observe: ring`` (with
causal stamping), and ``observe: ring`` + ``profile: on`` — and gates
the overhead ratios in CI through ``floors.json``.

Medians across trials, not means: the first trial pays interpreter
warm-up, and CI machines jitter.
"""

import statistics
import time

from conftest import run_once

from repro.analysis.tables import format_table
from repro.scenario import Scenario, run


def _median_ms(fn, trials):
    samples = []
    for _ in range(trials):
        start = time.perf_counter()
        result = fn()
        samples.append((time.perf_counter() - start) * 1000.0)
        assert result.decided_values == {1}
    return statistics.median(samples)


def test_o1_tracing_overhead(benchmark, table_sink, bench_sink, smoke):
    trials = 3 if smoke else 7
    scenario = Scenario(protocol="bracha", n=4, instances=2, proposals=1,
                        seed=13)
    variants = [
        ("observe off", {}),
        ("observe ring", {"observe": "ring"}),
        ("ring + profile", {"observe": "ring", "profile": "on"}),
    ]

    def experiment():
        rows = []
        for label, overrides in variants:
            ms = _median_ms(lambda: run(scenario, **overrides), trials)
            rows.append([label, round(ms, 2)])
        return rows

    rows = run_once(benchmark, experiment)
    baseline = rows[0][1]
    for row in rows:
        row.append(round(row[1] / baseline, 2) if baseline else 0.0)
    table_sink(
        "o1_tracing_overhead",
        format_table(
            ["variant", "median ms", "x baseline"],
            rows,
            title="O1. Tracing/profiling overhead, one fixed-seed sim run "
                  f"(bracha n=4 x2 instances, {trials} trials, "
                  f"{'smoke' if smoke else 'full'} mode)",
        ),
    )
    by_label = {row[0]: row for row in rows}
    observe_x = by_label["observe ring"][2]
    profile_x = by_label["ring + profile"][2]
    # The stance is "cheap enough to leave on while debugging", not
    # "free": ratios are gated in floors.json, not asserted here, so a
    # noisy CI box degrades the gate margin instead of flaking the test.
    bench_sink(
        "o1_tracing",
        {
            "observe_off_ms": baseline,
            "observe_ring_ms": by_label["observe ring"][1],
            "profile_on_ms": by_label["ring + profile"][1],
            "observe_overhead_x": observe_x,
            "profile_overhead_x": profile_x,
        },
        meta={"trials": trials, "scenario": "bracha n=4 x2 seed=13"},
    )
