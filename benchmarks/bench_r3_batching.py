"""R3 — Batched message pipeline: frames, messages-per-frame, wall time.

The engine/driver refactor lets the runtime coalesce every message a
node queues for a destination during one pump iteration into a single
wire frame (one codec pass, one MAC, one length-prefixed TCP write —
see ``docs/architecture.md``).  This benchmark quantifies the effect on
the multi-instance Bracha pipeline, the workload the batching shape was
built for: messages per frame, total frames, and wall-clock per
decision, batched vs unbatched, on both runtime fabrics.

Run with ``--smoke`` for the CI-sized subset; the ≥3× frame-compression
bound on the batched TCP run is asserted in both modes.
"""

import time

from conftest import run_once

from repro.analysis.tables import format_table
from repro.scenario import Scenario, run


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return (time.perf_counter() - start) * 1000.0, result


def test_r3_batched_vs_unbatched(benchmark, table_sink, bench_sink, smoke):
    instances = 4 if smoke else 8
    trials = 1 if smoke else 3
    fabrics = ["local", "tcp"]
    modes = ["off", "flush"]

    def experiment():
        rows = []
        compression = {}
        for fabric in fabrics:
            for mode in modes:
                total_ms = 0.0
                frames = 0
                messages = 0
                mpf = 0.0
                for trial in range(trials):
                    scenario = Scenario(
                        protocol="bracha", n=4, proposals=1,
                        instances=instances, fabric=fabric,
                        batching=mode, seed=300 + trial, timeout=120.0,
                    )
                    ms, result = _timed(lambda: run(scenario))
                    assert result.decided_values == {1}
                    total_ms += ms
                    snap = result.metrics
                    frames += snap.counter("frames_sent")
                    messages += snap.counter("wire_messages_sent")
                    mpf += snap.gauges["messages_per_frame"]
                rows.append([
                    fabric, mode, round(total_ms / trials, 2),
                    messages // trials, frames // trials,
                    round(mpf / trials, 2),
                ])
                compression[(fabric, mode)] = messages / frames
        return rows, compression

    rows, compression = run_once(benchmark, experiment)
    table_sink(
        "r3_batching",
        format_table(
            ["fabric", "batching", "ms/run", "messages", "frames", "msgs/frame"],
            rows,
            title=f"R3. Batched vs unbatched message pipeline "
                  f"(Bracha, n=4, instances={instances}, "
                  f"{'smoke' if smoke else 'full'} mode)",
        ),
    )
    # Unbatched runs are the identity baseline: one frame per message.
    assert compression[("local", "off")] == 1.0
    assert compression[("tcp", "off")] == 1.0
    # The acceptance bound: on the multi-instance Bracha run, batching
    # must carry at least 3x more messages than frames on TCP (each
    # frame saves a codec pass, a MAC, and a length-prefixed write).
    assert compression[("tcp", "flush")] >= 3.0
    assert compression[("local", "flush")] >= 3.0
    timing = {(row[0], row[1]): row[2] for row in rows}
    bench_sink(
        "r3_batching",
        {
            "local_flush_msgs_per_frame": round(compression[("local", "flush")], 2),
            "tcp_flush_msgs_per_frame": round(compression[("tcp", "flush")], 2),
            "local_flush_ms_per_run": timing[("local", "flush")],
            "tcp_flush_ms_per_run": timing[("tcp", "flush")],
        },
        meta={"instances": instances, "trials": trials},
    )
