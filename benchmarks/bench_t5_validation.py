"""T5 — Validation is load-bearing: t < n/5 (Ben-Or) vs t < n/3 (Bracha).

The paper's key qualitative claim: adding reliable broadcast + message
validation to Ben-Or-style rounds lifts Byzantine resilience from
``n > 5t`` to the optimal ``n > 3t``.  Three measurements:

* **T5a** — the scripted equivocation attack
  (:mod:`repro.adversary.benor_attack`) against Ben-Or at n=4, t=1
  (outside its envelope): the adversary forges a decide quorum toward
  one process and steers the rest to the opposite value; it succeeds
  whenever the two victims' local coins cooperate (≈ 1/4 of seeds) —
  i.e. *eventually*, against a protocol that is supposed to be safe
  always.
* **T5b** — the same forged message played against Bracha's validation:
  the decide-proposal needs a > n/2 majority of validated step-2
  messages, which does not exist, so it stays pending forever and the
  attack never starts.
* **T5c** — Bracha end-to-end under two-faced + split-brain scheduling
  at maximum resilience: every trial decides cleanly.
"""

from conftest import run_once

from repro.adversary import SplitBrainScheduler
from repro.adversary.benor_attack import attack_success_rate
from repro.analysis.tables import format_table
from repro.baselines import run_protocol
from repro.core.validation import StepValidator
from repro.params import ProtocolParams
from repro.types import Step, StepValue

TRIALS = 20


def test_t5a_benor_disagreement_attack(benchmark, table_sink):
    def experiment():
        wins, reports = attack_success_rate(TRIALS, seed=0)
        outcomes = {}
        for report in reports:
            outcomes[report.outcome] = outcomes.get(report.outcome, 0) + 1
        return wins, outcomes

    wins, outcomes = run_once(benchmark, experiment)
    rows = [[outcome, count] for outcome, count in sorted(outcomes.items())]
    table_sink(
        "t5a_benor_attack",
        format_table(
            ["outcome", "count"],
            rows,
            title=f"T5a. Scripted equivocation attack on Ben-Or at n=4,t=1 "
                  f"({TRIALS} seeds): {wins} agreement violations "
                  "(theory: ~1/4 per attempt, hence eventual certainty)",
        ),
    )
    assert wins >= 1, "the attack must land for some seeds"
    assert wins <= TRIALS // 2, "and the coins must not always cooperate"


def test_t5b_bracha_blocks_the_same_forgery(benchmark, table_sink):
    """Replay the forged decide-proposal against the validation layer."""

    def experiment():
        params = ProtocolParams(4, 1)
        validator = StepValidator(params)
        # The honest history the adversary cannot change: step-1 is split
        # and step-2 never reaches a >n/2 majority for 1.
        for pid, bit in ((0, 1), (1, 1), (2, 0)):
            validator.add(1, Step.ONE, pid, StepValue(bit))
        for pid, bit in ((0, 1), (1, 1), (2, 0)):
            validator.add(1, Step.TWO, pid, StepValue(bit))
        # p3's forged decide-proposal for 1 (what won the Ben-Or attack):
        validator.add(1, Step.THREE, 3, StepValue(1, decide=True))
        return {
            "validated": validator.validated_count(1, Step.THREE),
            "pending": validator.pending_count(1, Step.THREE),
            "decide_support": validator.decide_support(1),
        }

    state = run_once(benchmark, experiment)
    table_sink(
        "t5b_bracha_blocks",
        format_table(
            ["forged (d,1) validated", "held pending", "decide support"],
            [[state["validated"], state["pending"], str(state["decide_support"])]],
            title="T5b. The identical forgery against Bracha's validation: "
                  "pending forever, zero decide support",
        ),
    )
    assert state["validated"] == 0
    assert state["pending"] == 1
    assert state["decide_support"] == {0: 0, 1: 0}


def test_t5c_bracha_end_to_end_under_attack(benchmark, table_sink, bench_sink):
    def experiment():
        clean = 0
        for seed in range(TRIALS):
            result = run_protocol(
                "bracha", n=4, proposals=[1, 1, 0, 0],
                faults={3: "two_faced"},
                scheduler=SplitBrainScheduler([0, 1], holdback=250),
                seed=seed, max_steps=3_000_000,
            )
            clean += int(len(result.decided_values) == 1)
        return clean

    clean = run_once(benchmark, experiment)
    table_sink(
        "t5c_bracha_control",
        format_table(
            ["trials", "clean decisions", "violations"],
            [[TRIALS, clean, TRIALS - clean]],
            title="T5c. Bracha at n=4,t=1 under two-faced + split-brain: "
                  "inside its envelope, nothing breaks",
        ),
    )
    assert clean == TRIALS
    bench_sink(
        "t5_validation",
        {"bracha_clean_decisions": clean},
        meta={"trials": TRIALS},
    )
