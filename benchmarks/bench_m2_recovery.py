"""M2 — Crash recovery: WAL logging overhead and restart-to-decision cost.

The recovery subsystem's claim: a node's write-ahead log plus the
deterministic sans-I/O engines make a SIGKILLed process reconstructible
— respawn it with ``--recover``, replay the log, and it rejoins the run
and decides.  Regenerates: the wall-clock cost of a full mp run that
loses one process mid-flight and recovers it from its WAL (kill at
0.1s, respawn 0.5s later), against the same run without the fault, plus
the per-run cost of WAL logging itself on the deterministic local
fabric.

Run with ``--smoke`` for the CI-sized subset; the mp restart run pays
the kill-window (0.5s down) plus a respawn on top of process spawning,
so trials stay small in both modes.
"""

import tempfile
import time

from conftest import run_once

from repro.analysis.tables import format_table
from repro.scenario import Scenario, run


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return (time.perf_counter() - start) * 1000.0, result


def test_m2_recovery(benchmark, table_sink, bench_sink, smoke):
    trials = 1 if smoke else 3

    def experiment():
        rows = []
        timings = {}
        recovery_stats = {"restarts": 0, "replayed": 0, "recovery_s": 0.0}
        base = Scenario(protocol="bracha", n=4, proposals=1, timeout=60.0)
        restart_link = {"retransmit": True, "rto": 0.1, "delay": 0.05,
                        "max_retries": 200}
        with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as wal:
            configs = [
                ("local_plain", "local, no WAL",
                 base.replace(fabric="local")),
                ("local_wal", "local + WAL per node",
                 base.replace(fabric="local", recovery=f"wal:{wal}")),
                ("mp", "mp (4 processes)",
                 base.replace(fabric="mp", recovery="wal",
                              link=restart_link)),
                ("mp_restart", "mp, one SIGKILLed + WAL-recovered",
                 base.replace(
                     fabric="mp", recovery="wal", link=restart_link,
                     faults={3: {"kind": "restart",
                                 "after": 0.1, "down": 0.5}},
                 )),
            ]
            for key, label, scenario in configs:
                total_ms = 0.0
                decisions = 0
                for trial in range(trials):
                    ms, result = _timed(
                        lambda: run(scenario, seed=900 + trial)
                    )
                    assert result.decided_values == {1}
                    total_ms += ms
                    decisions = len(result.decisions)
                    if key == "mp_restart":
                        counters = result.metrics.counters
                        recovery_stats["restarts"] = counters.get(
                            "restarts", 0)
                        recovery_stats["replayed"] = counters.get(
                            "recovery_replayed", 0)
                        recovery_stats["recovery_s"] = round(
                            result.metrics.gauges.get("recovery_time", 0.0),
                            3)
                timings[key] = round(total_ms / trials, 2)
                rows.append([label, timings[key], decisions])
        return rows, timings, recovery_stats

    rows, timings, recovery = run_once(benchmark, experiment)
    table_sink(
        "m2_recovery",
        format_table(
            ["configuration", "ms/run", "decisions"],
            rows,
            title="M2. One Bracha decision with crash recovery: WAL "
                  f"logging cost and SIGKILL+replay cost (n=4, "
                  f"{'smoke' if smoke else 'full'} mode)",
        ),
    )
    # The restarted node recovers and decides: all four nodes report,
    # exactly one restart happened, and the WAL replayed something.
    assert rows[3][2] == 4
    assert recovery["restarts"] == 1
    assert recovery["replayed"] > 0
    assert recovery["recovery_s"] > 0.0
    # The kill window (0.5s down + backoff + respawn) dominates the
    # restart run's overhead; it must stay in the same regime as a
    # clean mp run, not degenerate toward the scenario timeout.
    assert timings["mp_restart"] < timings["mp"] * 6.0 + 5000.0
    bench_sink(
        "m2_recovery",
        {
            "local_plain_ms": timings["local_plain"],
            "local_wal_ms": timings["local_wal"],
            "mp_ms": timings["mp"],
            "mp_restart_ms": timings["mp_restart"],
            "wal_overhead_ms": round(
                timings["local_wal"] - timings["local_plain"], 2),
            "restarts": recovery["restarts"],
            "replayed_records": recovery["replayed"],
            "recovery_s": recovery["recovery_s"],
        },
        meta={"trials": trials, "n": 4,
              "kill_after_s": 0.1, "down_s": 0.5},
    )
