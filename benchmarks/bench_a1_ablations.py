"""A1/A2 — Ablations of the two design choices DESIGN.md calls out.

* **A1: remove validation.**  One stubborn Byzantine process broadcasts
  well-formed step messages for the minority bit (with a forged decide
  proposal in step 3) in every round, while all correct processes are
  unanimous on the other bit.  With validation, none of its messages are
  ever justified (the minority bit lacks step-majority support) and the
  unanimous value wins every time.  Without validation, its messages
  poison step quorums, deny the >n/2 majority, push rounds into the coin
  branch — and the system decides a value **no correct process
  proposed**: a strong-validity violation from a single process at
  t < n/3.

* **A2: remove decide amplification.**  The textbook protocol decides
  but never halts: rounds keep executing forever.  We measure messages
  after the decision under a fixed extra budget — with amplification the
  run quiesces; without it the protocol burns the entire budget.
"""

from conftest import run_once

from repro import run_consensus
from repro.analysis.experiments import ablation_stack
from repro.analysis.tables import format_table

TRIALS = 12


def liar_run(validate, seed):
    """n=4: correct p0..p2 propose 1 unanimously; p3 stubbornly
    broadcasts well-formed step messages for 0 (with a forged decide
    proposal in step 3) in every round."""
    return run_consensus(
        n=4, proposals=[1, 1, 1, 0],
        faults={3: {"kind": "stubborn", "bit": 0, "horizon": 16}},
        stack=ablation_stack(validate=validate),
        seed=seed, check=False, max_steps=1_200_000,
    )


def test_a1_validation_ablation(benchmark, table_sink, bench_sink):
    def experiment():
        rows = []
        for validate in (True, False):
            validity_violations = 0
            decided_minority = 0
            for seed in range(TRIALS):
                result = liar_run(validate, seed)
                if 0 in result.decided_values:
                    decided_minority += 1
                if any("proposed by no correct" in v for v in result.violations):
                    validity_violations += 1
            rows.append([
                "with validation" if validate else "WITHOUT validation",
                TRIALS, decided_minority, validity_violations,
            ])
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "a1_validation_ablation",
        format_table(
            ["configuration", "trials", "decided the liar's bit",
             "strong-validity violations"],
            rows,
            title="A1. One stubborn bidder vs unanimity "
                  "(n=4: correct processes all propose 1; the fault pushes 0 "
                  "with a forged decide proposal every round)",
        ),
    )
    with_validation = rows[0]
    without_validation = rows[1]
    assert with_validation[2] == 0 and with_validation[3] == 0
    assert without_validation[3] >= 1, (
        "without validation the liar must win on some seeds"
    )
    bench_sink(
        "a1_ablations",
        {
            "with_validation_violations": with_validation[3],
            "without_validation_violations": without_validation[3],
        },
        meta={"trials": TRIALS},
    )


def test_a2_halting_ablation(benchmark, table_sink):
    extra_budget = 30_000

    def tail_traffic(amplify, seed):
        from repro.analysis.experiments import setup_consensus

        run = setup_consensus(
            n=4, proposals=[0, 1, 0, 1],
            stack=ablation_stack(amplify_decides=amplify), seed=seed,
        )
        sim = run.sim
        sim.start()
        run.propose_all()
        sim.run(until=run.all_decided, max_steps=2_000_000)
        at_decision = sim.metrics.sent
        rounds_at_decision = max(c.stats["rounds"] for c in run.consensus.values())
        try:
            sim.run(max_steps=extra_budget)  # drain or keep spinning
        except Exception:
            pass
        rounds_after = max(c.stats["rounds"] for c in run.consensus.values())
        return (
            sim.metrics.sent - at_decision,
            rounds_after - rounds_at_decision,
            sim.quiescent,
        )

    def experiment():
        rows = []
        for amplify in (True, False):
            tails, extra_rounds, quiescent_count = [], [], 0
            for seed in range(5):
                tail, rounds, quiescent = tail_traffic(amplify, seed)
                tails.append(tail)
                extra_rounds.append(rounds)
                quiescent_count += int(quiescent)
            rows.append([
                "with amplification" if amplify else "WITHOUT amplification",
                5, max(tails), max(extra_rounds), quiescent_count,
            ])
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "a2_halting_ablation",
        format_table(
            ["configuration", "trials", "max msgs after decision",
             "max extra rounds", "runs that quiesced"],
            rows,
            title=f"A2. Post-decision traffic within a {extra_budget}-step tail budget",
        ),
    )
    with_amp, without_amp = rows
    assert with_amp[4] == 5, "with amplification every run quiesces"
    assert without_amp[4] == 0, "the textbook protocol never quiesces"
    assert without_amp[2] > with_amp[2] * 3, "unbounded tail traffic"
