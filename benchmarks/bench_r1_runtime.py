"""R1 — Runtime fabrics: simulator vs asyncio-local vs TCP throughput.

The runtime subsystem's claim: the same protocol stacks run unmodified
over real concurrent transports, and the in-process asyncio fabric is
fast enough to use as a development loop.  Regenerates: wall time and
message cost per decision for each fabric across system sizes, plus the
batching effect of running many consensus instances over one shared
broadcast layer (the shape ACS and later batching work rely on).

Both experiments are expressed as declarative scenarios: one
:class:`repro.scenario.Scenario` per configuration, with the fabric as
just another field — the benchmark measures exactly what ``repro run``
would execute.

Run with ``--smoke`` for the CI-sized subset.
"""

import time

from conftest import run_once

from repro.analysis.tables import format_table
from repro.scenario import Scenario, run


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return (time.perf_counter() - start) * 1000.0, result


def test_r1_fabric_comparison(benchmark, table_sink, bench_sink, smoke):
    sizes = [4] if smoke else [4, 7, 10]
    trials = 1 if smoke else 3
    fabric_labels = {"sim": "simulator", "local": "asyncio", "tcp": "tcp"}

    def experiment():
        rows = []
        for n in sizes:
            scenario = Scenario(protocol="bracha", n=n, proposals=1)
            for fabric, label in fabric_labels.items():
                total_ms = 0.0
                messages = 0
                for trial in range(trials):
                    seed = 100 * n + trial
                    ms, result = _timed(
                        lambda: run(scenario, fabric=fabric, seed=seed)
                    )
                    assert result.decided_values == {1}
                    total_ms += ms
                    messages += result.messages_sent
                rows.append(
                    [n, label, round(total_ms / trials, 2),
                     messages // trials]
                )
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "r1_fabric_comparison",
        format_table(
            ["n", "fabric", "ms/decision", "messages"],
            rows,
            title="R1a. One unanimous Bracha decision per fabric "
                  f"({'smoke' if smoke else 'full'} mode)",
        ),
    )
    # Every fabric must complete; relative speed is reported, not asserted
    # (CI machines vary), except that the simulator result must exist for
    # every size the runtime ran.
    fabrics_per_n = {n: {row[1] for row in rows if row[0] == n} for n in sizes}
    assert all(
        fabrics == {"simulator", "asyncio", "tcp"}
        for fabrics in fabrics_per_n.values()
    )
    by_fabric = {row[1]: row for row in rows if row[0] == 4}
    bench_sink(
        "r1_fabric_comparison",
        {
            "sim_ms": by_fabric["simulator"][2],
            "local_ms": by_fabric["asyncio"][2],
            "tcp_ms": by_fabric["tcp"][2],
            "messages_n4": by_fabric["simulator"][3],
        },
        meta={"sizes": sizes, "trials": trials},
    )


def test_r1_instance_batching(benchmark, table_sink, bench_sink, smoke):
    batches = [1, 4] if smoke else [1, 2, 4, 8, 16]
    n = 4

    def experiment():
        rows = []
        for instances in batches:
            scenario = Scenario(
                protocol="bracha", n=n, proposals=1, seed=7,
                fabric="local", instances=instances, timeout=120.0,
            )
            ms, result = _timed(lambda: run(scenario))
            rows.append([
                instances,
                round(ms, 2),
                round(ms / instances, 2),
                result.messages_sent,
                round(result.messages_sent / instances),
            ])
            assert result.decided_values == {1}
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "r1_instance_batching",
        format_table(
            ["instances", "ms total", "ms/instance", "messages", "msgs/instance"],
            rows,
            title="R1b. Parallel Bracha instances over one shared RBC layer "
                  "(asyncio-local, n=4)",
        ),
    )
    # Batching must amortize: per-instance wall time should not grow
    # linearly with the batch — allow generous slack for CI noise.
    per_instance = {row[0]: row[2] for row in rows}
    largest = max(batches)
    assert per_instance[largest] < per_instance[1] * 2.0
    msgs_per_instance = {row[0]: row[4] for row in rows}
    bench_sink(
        "r1_instance_batching",
        {
            "x1_ms": per_instance[1],
            "x4_ms": per_instance[4],
            "x4_msgs_per_instance": msgs_per_instance[4],
        },
        meta={"batches": batches, "n": n},
    )
