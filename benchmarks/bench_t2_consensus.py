"""T2 — Consensus correctness at optimal resilience t = ⌊(n−1)/3⌋.

Paper claim (the main theorem): the protocol solves Byzantine consensus
for t < n/3 — agreement, strong validity, integrity always; termination
with probability 1.  Regenerates: a correctness matrix over n with
maximum faults injected, unanimous and split inputs.
"""

from conftest import run_once

from repro import run_consensus
from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.params import max_faults

TRIALS = 8


def test_t2_consensus_matrix(benchmark, table_sink, bench_sink):
    configs = [
        (4, "unanimous", {}),
        (4, "split", {}),
        (4, "split", {3: "two_faced"}),
        (7, "unanimous", {}),
        (7, "split", {}),
        (7, "split", {5: "silent", 6: "two_faced"}),
        (10, "split", {}),
        (10, "split", {7: "silent", 8: "two_faced", 9: "fuzzer"}),
        (13, "split", {}),
    ]

    def experiment():
        rows = []
        for n, inputs, faults in configs:
            proposals = 1 if inputs == "unanimous" else [pid % 2 for pid in range(n)]
            rounds = []
            messages = []
            for seed in range(TRIALS):
                result = run_consensus(
                    n=n, proposals=proposals, faults=faults,
                    seed=seed * 101 + n, max_steps=4_000_000,
                )
                rounds.append(result.decision_round())
                messages.append(result.messages_sent)
            fault_label = "+".join(sorted(set(
                spec if isinstance(spec, str) else spec["kind"]
                for spec in faults.values()
            ))) or "none"
            rows.append([
                n, max_faults(n), inputs, fault_label, TRIALS,
                summarize(rounds).mean, max(rounds),
                summarize(messages).mean,
            ])
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "t2_consensus_matrix",
        format_table(
            ["n", "t", "inputs", "faults", "trials", "mean rounds",
             "max rounds", "mean msgs"],
            rows,
            title="T2. Consensus at optimal resilience: 0 violations by "
                  "construction (checked harness); decision rounds and cost",
        ),
    )
    unanimous = [row for row in rows if row[2] == "unanimous" and row[3] == "none"]
    assert all(row[5] == 1.0 for row in unanimous), "unanimity decides in round 1"
    assert all(row[6] <= 30 for row in rows), "no runaway round counts"
    bench_sink(
        "t2_consensus_matrix",
        {
            "configs": len(rows),
            "max_rounds_observed": max(row[6] for row in rows),
            "unanimous_mean_rounds": unanimous[0][5],
        },
        meta={"trials": TRIALS},
    )
