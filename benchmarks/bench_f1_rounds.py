"""F1 — Expected rounds: local coin vs common coin.

Paper claims:
* unanimous inputs decide in one round, coin irrelevant;
* with split inputs and local coins, convergence needs all coin-flipping
  processes to land together — expected rounds grow with n;
* with a common coin (Rabin), each round ends unanimous with
  probability ≥ 1/2, so expected rounds are O(1) *independent of n*.

Regenerates: the rounds-to-decide distribution (the paper's figure as a
text histogram) and a mean-rounds table over n.
"""

from conftest import run_once

from repro import repeat_consensus
from repro.analysis.stats import histogram, summarize
from repro.analysis.tables import format_table

TRIALS = 30


def spark(hist, width=30):
    total = sum(hist.values())
    return " ".join(
        f"{r}:{'#' * max(1, round(width * c / total))}" for r, c in sorted(hist.items())
    )


def test_f1_round_distribution(benchmark, table_sink, bench_sink):
    sizes = [4, 7, 10]

    def experiment():
        rows = []
        histograms = {}
        for coin in ("local", "dealer"):
            for n in sizes:
                results = repeat_consensus(
                    TRIALS, n=n, proposals=[pid % 2 for pid in range(n)],
                    coin=coin, seed=1234 + n, max_steps=5_000_000,
                )
                rounds = [r.decision_round() for r in results]
                summary = summarize(rounds)
                rows.append([
                    coin, n, TRIALS, summary.mean, summary.p90, summary.maximum,
                ])
                histograms[(coin, n)] = histogram(rounds)
        return rows, histograms

    rows, histograms = run_once(benchmark, experiment)
    lines = [
        format_table(
            ["coin", "n", "trials", "mean rounds", "p90", "max"],
            rows,
            title="F1a. Rounds to decide, split inputs",
        ),
        "",
        "F1b. Distribution (round:count bars)",
    ]
    for (coin, n), hist in histograms.items():
        lines.append(f"  {coin:>6} n={n:<3} {spark(hist)}")
    table_sink("f1_round_distribution", "\n".join(lines))

    local = {row[1]: row[3] for row in rows if row[0] == "local"}
    common = {row[1]: row[3] for row in rows if row[0] == "dealer"}
    # Common coin stays flat: the largest n is no worse than ~2x the smallest.
    assert common[10] <= common[4] * 2 + 1
    # Local coin at n=10 must not beat common coin at n=10 materially.
    assert local[10] >= common[10] - 0.5
    bench_sink(
        "f1_round_distribution",
        {
            "common_mean_rounds_n10": round(common[10], 2),
            "local_mean_rounds_n10": round(local[10], 2),
        },
        meta={"sizes": sizes, "trials": TRIALS},
    )


def test_f1_unanimous_one_round(benchmark, table_sink):
    def experiment():
        rows = []
        for coin in ("local", "dealer"):
            for n in (4, 7, 10):
                results = repeat_consensus(
                    10, n=n, proposals=1, coin=coin, seed=99 + n,
                )
                rows.append([coin, n, max(r.decision_round() for r in results)])
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "f1_unanimous",
        format_table(
            ["coin", "n", "max decision round (10 trials)"],
            rows,
            title="F1c. Unanimous inputs decide in round 1, coin-independent",
        ),
    )
    assert all(row[2] == 1 for row in rows)
