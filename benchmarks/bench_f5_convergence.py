"""F5 — Convergence dynamics: how fast estimates collapse to one value.

The termination proof has a concrete mechanical core: each round, either
decide-proposal adoption or the coin pulls correct processes toward one
bit, and once they all agree the protocol can never leave that state.
This figure plots the mechanism directly: the fraction of correct
processes whose round-entry estimate equals the eventual decision, per
round — a curve that must be monotone-ish and hit 1.0 within a couple of
rounds for the common coin.

Also reported: how often adoption (the deterministic pull) versus the
coin (the random pull) ended each round — the mix the proofs reason
about.
"""

from conftest import run_once

from repro.analysis.experiments import setup_consensus
from repro.analysis.tables import format_table

TRIALS = 15
MAX_ROUND = 5


def convergence_curve(n, coin, seed):
    run = setup_consensus(
        n=n, proposals=[pid % 2 for pid in range(n)], coin=coin, seed=seed
    )
    sim = run.sim
    sim.start()
    run.propose_all()
    sim.run(until=run.all_decided, max_steps=4_000_000)
    decisions = {c.decision for c in run.consensus.values()}
    assert len(decisions) == 1
    decided = decisions.pop()
    curve = []
    for round_ in range(1, MAX_ROUND + 1):
        entries = [
            c.round_history.get(round_) for c in run.consensus.values()
        ]
        known = [bit for bit in entries if bit is not None]
        if not known:
            curve.append(1.0)  # everyone decided before reaching the round
            continue
        agreeing = sum(1 for bit in known if bit == decided)
        curve.append(agreeing / len(known))
    flips = sum(c.stats["coin_flips"] for c in run.consensus.values())
    adoptions = sum(c.stats["adoptions"] for c in run.consensus.values())
    return curve, flips, adoptions


def test_f5_convergence_dynamics(benchmark, table_sink, bench_sink):
    configs = [(7, "local"), (7, "dealer"), (10, "dealer")]

    def experiment():
        rows = []
        for n, coin in configs:
            sums = [0.0] * MAX_ROUND
            total_flips = total_adoptions = 0
            for seed in range(TRIALS):
                curve, flips, adoptions = convergence_curve(n, coin, 300 + seed)
                for i, frac in enumerate(curve):
                    sums[i] += frac
                total_flips += flips
                total_adoptions += adoptions
            means = [s / TRIALS for s in sums]
            rows.append([n, coin] + [round(m, 3) for m in means]
                        + [total_adoptions, total_flips])
        return rows

    rows = run_once(benchmark, experiment)
    headers = (["n", "coin"] + [f"r{r}" for r in range(1, MAX_ROUND + 1)]
               + ["adoptions", "coin flips"])
    table_sink(
        "f5_convergence",
        format_table(
            headers, rows,
            title="F5. Mean fraction of correct processes holding the "
                  "eventual decision at each round entry (split inputs)",
        ),
    )
    for row in rows:
        curve = row[2:2 + MAX_ROUND]
        assert curve[-1] == 1.0, "everyone converges within the window"
        # weak monotonicity: never a big regression once above 0.9
        for a, b in zip(curve, curve[1:]):
            if a >= 0.9:
                assert b >= a - 0.05
    # The common coin converges at least as fast as local at n=7 by round 2.
    local = next(row for row in rows if row[0] == 7 and row[1] == "local")
    common = next(row for row in rows if row[0] == 7 and row[1] == "dealer")
    assert common[3] >= local[3] - 0.1  # r2 column
    bench_sink(
        "f5_convergence",
        {
            "common_r2_fraction_n7": round(common[3], 3),
            "local_r2_fraction_n7": round(local[3], 3),
        },
        meta={"trials": TRIALS, "max_round": MAX_ROUND},
    )
