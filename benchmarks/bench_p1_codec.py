"""P1 — Fast wire path: binary codec vs tagged JSON, retransmit wheel.

The binary wire codec (``repro.runtime.binarycodec``) replaces the
tagged-JSON envelope with struct-packed frames: a 10-byte header, the
HMAC over raw body bytes (no canonical-JSON re-serialization), and a
compact type-tagged value encoding with varint lengths.  This benchmark
quantifies the wire-path effect on the workload the batching pipeline
produces — a :class:`~repro.runtime.codec.WireBatch` of routed protocol
messages — and the retransmission layer's timer-wheel scan cost at
1 000 pending frames.

Floors committed in ``benchmarks/floors.json`` hold the headline
numbers: ≥2× frame-encode speedup and ≥30% wire-byte reduction over the
JSON codec, plus a ceiling on the idle timer-wheel sweep.  Run with
``--smoke`` for the CI-sized subset.
"""

import asyncio
import time

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.broadcast import RbcMessage
from repro.net.auth import KeyRing
from repro.runtime.codec import WireBatch
from repro.runtime.tcp import TcpTransport, encode_binary_frame, encode_json_frame
from repro.scenario import Scenario, run
from repro.types import Phase


def _batched_pipeline_frame():
    """One wire frame as the batched multi-instance Bracha pipeline
    coalesces it: 16 routed broadcast messages for one destination."""
    return WireBatch(tuple(
        (f"bracha:{i}", RbcMessage(f"rbc{i}", i % 4, Phase.ECHO, i % 2))
        for i in range(16)
    ))


def _time_us(fn, reps):
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) * 1e6 / reps


def test_p1_codec_wire_path(benchmark, table_sink, bench_sink, smoke):
    reps = 300 if smoke else 2000
    payload = _batched_pipeline_frame()
    ring = KeyRing(2, master_secret=b"bench-p1")

    def experiment():
        sender = TcpTransport(0, 2, ring, wire="json")
        receiver_json = TcpTransport(1, 2, ring, wire="json")
        receiver_bin = TcpTransport(1, 2, ring, wire="binary")
        auth = sender._auth

        json_frame = encode_json_frame(auth, 1, payload)
        bin_frame = encode_binary_frame(auth, 1, payload)

        encode_json_us = _time_us(lambda: encode_json_frame(auth, 1, payload), reps)
        encode_bin_us = _time_us(lambda: encode_binary_frame(auth, 1, payload), reps)
        # The receive path (MAC verify + decode), driven synchronously:
        # _ingest is the exact per-frame work the serve task performs.
        decode_json_us = _time_us(lambda: receiver_json._ingest(json_frame), reps)
        decode_bin_us = _time_us(lambda: receiver_bin._ingest(bin_frame), reps)
        assert receiver_json.accepted == reps and receiver_json.rejected == 0
        assert receiver_bin.accepted == reps and receiver_bin.rejected == 0

        # End-to-end: the batched pipeline over real sockets, per codec.
        e2e_ms = {}
        for codec_name in ("json", "binary"):
            start = time.perf_counter()
            result = run(Scenario(
                protocol="bracha", n=4, proposals=1, instances=4,
                fabric="tcp", batching="flush", codec=codec_name,
                seed=900, timeout=120.0,
            ))
            e2e_ms[codec_name] = (time.perf_counter() - start) * 1000.0
            assert result.decided_values == {1}

        return {
            "encode_json_us": encode_json_us,
            "encode_bin_us": encode_bin_us,
            "decode_json_us": decode_json_us,
            "decode_bin_us": decode_bin_us,
            "bytes_json": len(json_frame),
            "bytes_bin": len(bin_frame),
            "e2e_json_ms": e2e_ms["json"],
            "e2e_bin_ms": e2e_ms["binary"],
        }

    m = run_once(benchmark, experiment)
    encode_speedup = m["encode_json_us"] / m["encode_bin_us"]
    decode_speedup = m["decode_json_us"] / m["decode_bin_us"]
    reduction_pct = 100.0 * (1.0 - m["bytes_bin"] / m["bytes_json"])

    table_sink(
        "p1_codec",
        format_table(
            ["codec", "encode us/frame", "decode us/frame", "bytes/frame",
             "e2e ms (tcp, batched)"],
            [
                ["json", round(m["encode_json_us"], 2),
                 round(m["decode_json_us"], 2), m["bytes_json"],
                 round(m["e2e_json_ms"], 1)],
                ["binary", round(m["encode_bin_us"], 2),
                 round(m["decode_bin_us"], 2), m["bytes_bin"],
                 round(m["e2e_bin_ms"], 1)],
            ],
            title="P1. Wire codecs on the batched-pipeline frame "
                  "(WireBatch of 16 Bracha messages, MAC included)",
        ),
    )

    # The acceptance bounds of the fast-wire-path PR.
    assert encode_speedup >= 2.0, f"encode speedup {encode_speedup:.2f}x < 2x"
    assert reduction_pct >= 30.0, f"byte reduction {reduction_pct:.1f}% < 30%"

    bench_sink(
        "p1_codec",
        {
            "encode_speedup_x": round(encode_speedup, 2),
            "decode_speedup_x": round(decode_speedup, 2),
            "wire_bytes_reduction_pct": round(reduction_pct, 1),
            "bin_bytes_per_frame": m["bytes_bin"],
            "json_bytes_per_frame": m["bytes_json"],
            "e2e_binary_tcp_ms": round(m["e2e_bin_ms"], 1),
        },
        meta={"reps": reps, "batch_messages": 16},
    )


def test_p1_retransmit_wheel(benchmark, table_sink, bench_sink, smoke):
    """Timer-wheel scan cost with 1 000 pending unacked frames.

    The old scan sorted the whole pending table every tick; the heap
    wheel pops only what is due, so an idle tick (nothing overdue — the
    common case on a healthy link) is O(1) regardless of backlog.
    """
    from repro.netem.clock import TickClock
    from repro.netem.reliable import ReliableLink

    pending = 1000
    sweeps = 200 if smoke else 1000

    class _NullTransport:
        pid = 0

        async def send(self, dest, payload):
            pass

        async def recv(self):  # pragma: no cover - never polled here
            await asyncio.Event().wait()

    def experiment():
        clock = TickClock()
        link = ReliableLink(_NullTransport(), clock, rto=0.05)

        async def fill():
            for i in range(pending):
                await link.send(1 + (i % 3), f"payload-{i}")

        asyncio.run(fill())
        assert link.outstanding == pending

        now = clock.now()
        idle_us = _time_us(lambda: link._collect_due(now), sweeps)

        # One full sweep with every frame overdue: collect + reschedule.
        start = time.perf_counter()
        resend = link._collect_due(now + 1.0)
        due_all_us = (time.perf_counter() - start) * 1e6
        assert len(resend) == pending
        assert link.retransmitted == pending
        return {"idle_us": idle_us, "due_all_us": due_all_us}

    m = run_once(benchmark, experiment)
    table_sink(
        "p1_retransmit_wheel",
        format_table(
            ["sweep", "us/sweep"],
            [
                [f"idle ({pending} pending, none due)", round(m["idle_us"], 3)],
                [f"all {pending} due (pop + reschedule)", round(m["due_all_us"], 1)],
            ],
            title="P1. Retransmit timer-wheel scan cost",
        ),
    )
    bench_sink(
        "p1_retransmit_wheel",
        {
            "idle_sweep_us_at_1k_pending": round(m["idle_us"], 3),
            "full_sweep_us_at_1k_pending": round(m["due_all_us"], 1),
        },
        meta={"pending": pending, "sweeps": sweeps},
    )
