"""Shared benchmark plumbing.

Every benchmark regenerates one table or figure of the evaluation plan
(DESIGN.md §3).  The pattern:

* the experiment body runs exactly once through
  ``benchmark.pedantic(fn, iterations=1, rounds=1)`` so pytest-benchmark
  reports its wall time without re-running multi-minute sweeps;
* the resulting rows are printed as a paper-style table *and* written to
  ``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def smoke(request):
    """True when ``--smoke`` was passed: shrink sizes/trials for CI."""
    return bool(request.config.getoption("--smoke"))


@pytest.fixture
def bench_sink(request):
    """Callable(name, metrics, meta=None): write ``BENCH_<name>.json``.

    The perf-trajectory emitter: headline scalars land in
    ``benchmarks/out/BENCH_<name>.json`` (mode ``smoke`` or ``full``),
    uploaded by CI as artifacts and gated by
    ``python -m repro.obs.check_floors benchmarks/floors.json``.
    """
    from repro.obs.bench import emit_bench

    mode = "smoke" if request.config.getoption("--smoke") else "full"

    def sink(name: str, metrics, meta=None):
        return emit_bench(name, metrics, meta=meta, mode=mode, out_dir=OUT_DIR)

    return sink


@pytest.fixture
def table_sink():
    """Callable(name, text): print a table and persist it under out/."""

    def sink(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return sink


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
