"""M1 — Multi-process fabric: boot, decide, and crash-survival cost.

The mp fabric's claim: the same protocol stacks decide with one real OS
process per node — dealer bootstrap, subprocess spawn, authenticated
TCP between processes — at a wall-clock cost dominated by interpreter
startup, not by the protocol.  Regenerates: end-to-end wall time per
mp decision (the whole lifecycle: deal, spawn, barrier, decide,
collect) against the in-process tcp fabric on the same scenario, plus
the cost of a run that loses one process to SIGKILL mid-flight.

Run with ``--smoke`` for the CI-sized subset; mp runs pay ~1s of
process spawning each, so trials stay small in both modes.
"""

import time

from conftest import run_once

from repro.analysis.tables import format_table
from repro.scenario import Scenario, run


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return (time.perf_counter() - start) * 1000.0, result


def test_m1_multiprocess(benchmark, table_sink, bench_sink, smoke):
    trials = 1 if smoke else 3

    def experiment():
        rows = []
        timings = {}
        base = Scenario(protocol="bracha", n=4, proposals=1, timeout=60.0)
        configs = [
            ("tcp", "in-process tcp", base.replace(fabric="tcp")),
            ("mp", "mp (4 processes)", base.replace(fabric="mp")),
            ("mp_kill", "mp, one SIGKILLed", base.replace(
                fabric="mp", faults={3: {"kind": "kill", "after": 0.0}},
            )),
        ]
        for key, label, scenario in configs:
            total_ms = 0.0
            decisions = 0
            messages = 0
            for trial in range(trials):
                ms, result = _timed(
                    lambda: run(scenario, seed=700 + trial)
                )
                assert result.decided_values == {1}
                total_ms += ms
                decisions = len(result.decisions)
                messages += result.messages_sent
            timings[key] = round(total_ms / trials, 2)
            rows.append([
                label, timings[key], decisions, messages // trials,
            ])
        return rows, timings

    rows, timings = run_once(benchmark, experiment)
    table_sink(
        "m1_multiprocess",
        format_table(
            ["configuration", "ms/run", "decisions", "messages"],
            rows,
            title="M1. One Bracha decision, in-process tcp vs one OS "
                  f"process per node (n=4, "
                  f"{'smoke' if smoke else 'full'} mode)",
        ),
    )
    # The kill run loses a node, not the run: three survivors decide and
    # the lifecycle cost stays in the same regime as the full-strength
    # run (the SIGKILL must not stall the orchestrator until timeout).
    assert rows[2][2] == 3
    assert timings["mp_kill"] < timings["mp"] * 5.0
    bench_sink(
        "m1_multiprocess",
        {
            "tcp_ms": timings["tcp"],
            "mp_ms": timings["mp"],
            "mp_kill_ms": timings["mp_kill"],
            "mp_spawn_overhead_ms": round(timings["mp"] - timings["tcp"], 2),
        },
        meta={"trials": trials, "n": 4},
    )
