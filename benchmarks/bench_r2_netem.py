"""R2 — Netem: decision latency and retransmission cost vs. loss rate.

The netem subsystem's claim: the protocols still decide on genuinely
lossy real transports, paying for the loss with retransmissions rather
than with liveness.  Regenerates: decision wall time, protocol message
cost, and link-layer overhead (dropped / retransmitted frames) as the
per-frame loss probability rises, on both runtime fabrics — the
deterministic asyncio-local fabric and real TCP sockets.

Every configuration is a declarative scenario (the ``link`` field is
just another axis), so the benchmark measures exactly what ``repro run``
would execute.

Run with ``--smoke`` for the CI-sized subset.
"""

import time

from conftest import run_once

from repro.analysis.tables import format_table
from repro.scenario import Scenario, run


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return (time.perf_counter() - start) * 1000.0, result


def test_r2_latency_vs_loss(benchmark, table_sink, bench_sink, smoke):
    loss_rates = [0.0, 0.1] if smoke else [0.0, 0.05, 0.1, 0.2, 0.3]
    fabrics = ["local"] if smoke else ["local", "tcp"]
    trials = 1 if smoke else 3

    def experiment():
        rows = []
        for fabric in fabrics:
            for loss in loss_rates:
                link = (
                    {"loss": loss, "rto": 0.02} if loss else {}
                )
                scenario = Scenario(
                    protocol="bracha", n=4, proposals=1, fabric=fabric,
                    link=link, timeout=120.0,
                )
                total_ms = 0.0
                messages = dropped = retransmitted = 0
                for trial in range(trials):
                    ms, result = _timed(
                        lambda: run(scenario, seed=1000 + trial)
                    )
                    assert result.decided_values == {1}
                    total_ms += ms
                    messages += result.messages_sent
                    netem = result.meta.get("netem", {})
                    dropped += netem.get("dropped", 0)
                    retransmitted += netem.get("retransmitted", 0)
                rows.append([
                    fabric, loss, round(total_ms / trials, 2),
                    messages // trials, dropped // trials,
                    retransmitted // trials,
                ])
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "r2_latency_vs_loss",
        format_table(
            ["fabric", "loss", "ms/decision", "messages", "dropped",
             "retransmitted"],
            rows,
            title="R2a. Bracha decision cost vs. per-frame loss "
                  f"({'smoke' if smoke else 'full'} mode; seq/ack "
                  "retransmission enabled)",
        ),
    )
    # Liveness under loss is the claim: every configuration decided
    # (asserted per-run above).  Loss must also actually bite: at the
    # highest rate the link dropped frames and the layer resent some.
    lossiest = [row for row in rows if row[1] == max(loss_rates)]
    assert all(row[4] > 0 for row in lossiest)
    local = {row[1]: row for row in rows if row[0] == "local"}
    bench_sink(
        "r2_latency_vs_loss",
        {
            "local_loss0_ms": local[0.0][2],
            "local_loss10_ms": local[0.1][2],
            "local_loss10_dropped": local[0.1][4],
            "local_loss10_retransmitted": local[0.1][5],
        },
        meta={"loss_rates": loss_rates, "fabrics": fabrics, "trials": trials},
    )


def test_r2_partition_heal_latency(benchmark, table_sink, bench_sink, smoke):
    windows = [0.05, 0.2] if smoke else [0.05, 0.1, 0.2, 0.4]

    def experiment():
        rows = []
        for window in windows:
            scenario = Scenario(
                protocol="bracha", n=4, proposals=1, fabric="local",
                partitions=[{"start": 0.0, "stop": window,
                             "groups": [[0, 1], [2, 3]]}],
                link={"rto": 0.02},
                timeout=120.0,
            )
            ms, result = _timed(lambda: run(scenario, seed=2000))
            assert result.decided_values == {1}
            netem = result.meta["netem"]
            rows.append([
                window, round(ms, 2), netem["dropped_partition"],
                netem["retransmitted"],
            ])
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "r2_partition_heal",
        format_table(
            ["partition (s)", "ms/decision", "dropped", "retransmitted"],
            rows,
            title="R2b. Split-brain {0,1}|{2,3} for the first k modeled "
                  "seconds, then healed (asyncio-local, n=4)",
        ),
    )
    assert all(row[2] > 0 and row[3] > 0 for row in rows)
    by_window = {row[0]: row for row in rows}
    bench_sink(
        "r2_partition_heal",
        {
            "window200_ms": by_window[0.2][1],
            "window200_dropped": by_window[0.2][2],
            "window200_retransmitted": by_window[0.2][3],
        },
        meta={"windows": windows},
    )
