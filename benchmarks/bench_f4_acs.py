"""F4 — Application throughput: the asynchronous common subset.

The "basis of modern async BFT" claim made measurable: n parallel Bracha
agreements + n reliable broadcasts implement ACS (HoneyBadger's core),
committing at least n−t proposals per epoch.  Regenerates: per-epoch
commit counts, message cost, and replicated-log throughput.
"""

from conftest import run_once

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.app import AcsInstance, ReplicatedLog
from repro.core.broadcast import BroadcastLayer
from repro.core.coin import LocalCoin
from repro.params import for_system
from repro.sim.process import Process
from repro.sim.runner import Simulation
from repro.adversary.behaviors import SilentBehavior

TRIALS = 4


def run_acs_epoch(n, seed, silent=()):
    sim = Simulation(seed=seed)
    params = for_system(n)
    instances = {}
    for pid in range(n):
        if pid in silent:
            sim.network.register(SilentBehavior(pid, sim.network, params))
            continue
        process = Process(pid, sim.network, params)
        rbc = process.add_module(BroadcastLayer())
        instances[pid] = AcsInstance(
            process, rbc, coin_factory=lambda j: LocalCoin(salt=("f4", j))
        )
    sim.start()
    for pid, acs in instances.items():
        acs.propose(("tx", pid))
    sim.run(until=lambda: all(a.done for a in instances.values()),
            max_steps=6_000_000)
    outputs = {a.output.proposals for a in instances.values()}
    assert len(outputs) == 1, "ACS agreement violated"
    committed = len(outputs.pop())
    return committed, sim.metrics.sent, sim.steps


def test_f4_acs_commit_counts(benchmark, table_sink, bench_sink):
    configs = [(4, 0), (4, 1), (7, 0), (7, 2)]

    def experiment():
        rows = []
        for n, n_silent in configs:
            committed, messages = [], []
            for seed in range(TRIALS):
                silent = tuple(range(n - n_silent, n))
                c, m, _s = run_acs_epoch(n, seed * 23 + n, silent)
                committed.append(c)
                messages.append(m)
            rows.append([
                n, n_silent, TRIALS,
                summarize(committed).minimum, summarize(committed).mean,
                summarize(messages).mean,
            ])
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "f4_acs_commits",
        format_table(
            ["n", "silent", "trials", "min committed", "mean committed", "mean msgs"],
            rows,
            title="F4a. ACS: proposals committed per epoch (≥ n−t guaranteed)",
        ),
    )
    for row in rows:
        n, n_silent = row[0], row[1]
        t = (n - 1) // 3
        assert row[3] >= n - t, f"ACS must commit at least n−t at n={n}"
    bench_sink(
        "f4_acs",
        {
            "min_committed_n7_silent2": next(
                row[3] for row in rows if row[0] == 7 and row[1] == 2
            ),
            "mean_msgs_n4": round(
                next(row[5] for row in rows if (row[0], row[1]) == (4, 0)), 1
            ),
        },
        meta={"trials": TRIALS},
    )


def test_f4_replicated_log_throughput(benchmark, table_sink):
    def experiment():
        rows = []
        for n, batch in ((4, 2), (4, 6)):
            sim = Simulation(seed=n * 100 + batch)
            params = for_system(n)
            logs = []
            for pid in range(n):
                process = Process(pid, sim.network, params)
                rbc = process.add_module(BroadcastLayer())
                log = ReplicatedLog(
                    process, rbc,
                    coin_factory_for_epoch=lambda e, j: LocalCoin(salt=("f4l", e, j)),
                    batch_size=batch,
                )
                for i in range(batch * 2):
                    log.submit((pid, i))
                logs.append(log)
            sim.start()
            for log in logs:
                log.start(max_epochs=2)
            sim.run(until=lambda: all(l.epochs_committed >= 2 for l in logs),
                    max_steps=8_000_000)
            commands = [l.committed_commands() for l in logs]
            assert all(c == commands[0] for c in commands), "log divergence"
            rows.append([
                n, batch, 2, len(commands[0]), sim.metrics.sent,
                len(commands[0]) / max(1, sim.metrics.sent) * 1000,
            ])
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "f4_replicated_log",
        format_table(
            ["n", "batch", "epochs", "commands committed", "messages",
             "commands per 1k msgs"],
            rows,
            title="F4b. Replicated log: batching amortizes the agreement cost",
        ),
    )
    assert rows[1][3] > rows[0][3], "larger batches commit more commands"
    assert rows[1][5] > rows[0][5], "throughput per message improves with batching"
