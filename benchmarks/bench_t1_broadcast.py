"""T1 — Reliable broadcast: correctness and O(n²) message complexity.

Paper claim: Bracha's broadcast uses n INIT + n² ECHO + n² READY
messages and never violates consistency/totality, for t < n/3 faults.
Regenerates: message count vs n, fitted exponent, and a fault matrix.
"""

from conftest import run_once

from repro import run_broadcast
from repro.analysis.stats import fit_power_law
from repro.analysis.tables import format_table


def test_t1_broadcast_scaling(benchmark, table_sink, bench_sink):
    sizes = [4, 7, 10, 13, 16, 22, 31, 40]

    def experiment():
        rows = []
        for n in sizes:
            report = run_broadcast(n=n, sender=0, value="v", seed=n)
            predicted = n + 2 * n * n
            rows.append([n, report["messages"], predicted, report["steps"]])
        return rows

    rows = run_once(benchmark, experiment)
    ns = [row[0] for row in rows]
    messages = [row[1] for row in rows]
    exponent, _c = fit_power_law(ns, messages)
    table_sink(
        "t1_broadcast_scaling",
        format_table(
            ["n", "messages", "n+2n^2 (model)", "deliveries"],
            rows,
            title=(
                "T1a. Reliable broadcast cost vs system size "
                f"(fitted exponent {exponent:.3f}, model 2)"
            ),
        ),
    )
    assert all(row[1] == row[2] for row in rows), "cost must match the model exactly"
    assert 1.9 < exponent < 2.1
    bench_sink(
        "t1_broadcast_scaling",
        {"fitted_exponent": round(exponent, 3), "messages_n40": messages[-1]},
        meta={"sizes": sizes},
    )


def test_t1_broadcast_fault_matrix(benchmark, table_sink, bench_sink):
    trials = 10

    def experiment():
        rows = []
        for n, mode in [(4, "honest"), (4, "equivocate"), (7, "honest"),
                        (7, "equivocate"), (7, "silent"), (10, "equivocate")]:
            accepted_one = accepted_none = violations = 0
            for seed in range(trials):
                kwargs = {"n": n, "sender": 0, "seed": seed * 31 + n}
                if mode == "equivocate":
                    kwargs["equivocate"] = ("A", "B")
                if mode == "silent":
                    kwargs["silent"] = [n - 1, n - 2][: (n - 1) // 3]
                report = run_broadcast(check=False, **kwargs)
                violations += len(report["violations"])
                if report["accepted_values"]:
                    accepted_one += 1
                else:
                    accepted_none += 1
            rows.append([n, mode, trials, accepted_one, accepted_none, violations])
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "t1_broadcast_faults",
        format_table(
            ["n", "sender/faults", "trials", "delivered", "no delivery", "violations"],
            rows,
            title="T1b. Broadcast outcomes under faults "
                  "(equivocation may abort delivery, never splits it)",
        ),
    )
    assert sum(row[5] for row in rows) == 0, "no consistency/totality violations"
    honest = [row for row in rows if row[1] == "honest"]
    assert all(row[3] == trials for row in honest), "honest senders always deliver"
    bench_sink(
        "t1_broadcast_faults",
        {
            "violations": sum(row[5] for row in rows),
            "honest_delivered": sum(row[3] for row in honest),
        },
        meta={"trials": trials},
    )
