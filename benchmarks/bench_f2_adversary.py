"""F2 — Robustness to adversarial scheduling.

Paper claim: safety never depends on message timing, and termination
holds with probability 1 against *any* admissible adversary, including
one that sees released common coins (the model's strongest scheduler).
Regenerates: decision latency (delivery steps) under increasingly
hostile schedulers, and the MMR-14 contrast — the descendant's
PODC-14-style formulation is only fair-scheduler live (Tholoniat &
Gramoli), while Bracha's validation keeps it live under the same attack.
"""

from conftest import run_once

from repro import run_consensus
from repro.adversary import (
    CoinRushScheduler,
    DelayVictimScheduler,
    SplitBrainScheduler,
)
from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.baselines import run_protocol
from repro.core.coin import DealerCoin
from repro.errors import EventBudgetExceeded, LivenessFailure

TRIALS = 6
N = 4


def bracha_steps(scheduler_factory, coin_factory, seed):
    coin = coin_factory(seed)
    result = run_consensus(
        n=N, proposals=[0, 1, 0, 1], coin=coin,
        scheduler=scheduler_factory(coin),
        seed=seed, max_steps=4_000_000,
    )
    return result.steps


def test_f2_bracha_latency_under_attack(benchmark, table_sink, bench_sink):
    schedulers = [
        ("fair-random", lambda coin: None),
        ("victim-starve", lambda coin: DelayVictimScheduler([0], holdback=150)),
        ("split-brain", lambda coin: SplitBrainScheduler([0, 1], holdback=150)),
        ("coin-rush", lambda coin: CoinRushScheduler(coin, holdback=150)),
    ]

    def experiment():
        rows = []
        baseline_mean = None
        for name, factory in schedulers:
            steps = [
                bracha_steps(factory, lambda s: DealerCoin(N, 1, seed=s), seed)
                for seed in range(TRIALS)
            ]
            summary = summarize(steps)
            if baseline_mean is None:
                baseline_mean = summary.mean
            rows.append([name, TRIALS, summary.mean, summary.maximum,
                         summary.mean / baseline_mean])
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "f2_bracha_latency",
        format_table(
            ["scheduler", "trials", "mean steps", "max steps", "slowdown ×"],
            rows,
            title="F2a. Bracha decision latency under adversarial schedulers "
                  "(all trials decided; graceful degradation only)",
        ),
    )
    assert all(row[4] < 25 for row in rows), "bounded slowdown, no livelock"
    bench_sink(
        "f2_bracha_latency",
        {
            "fair_mean_steps": round(rows[0][2], 1),
            "worst_slowdown": round(max(row[4] for row in rows), 2),
        },
        meta={"schedulers": [name for name, _f in schedulers],
              "trials": TRIALS},
    )


def test_f2_mmr14_liveness_contrast(benchmark, table_sink):
    """The documented caveat, measured: MMR-14 under the coin-rushing
    scheduler with a tight step budget stalls far more often than Bracha
    under the identical attack and budget."""
    budget = 120_000

    def attempt(protocol, seed):
        coin = DealerCoin(N, 1, seed=seed)
        try:
            run_protocol(
                protocol, n=N, proposals=[0, 1, 0, 1], coin=coin,
                scheduler=CoinRushScheduler(coin, holdback=400),
                seed=seed, max_steps=budget,
            )
            return "decided"
        except (EventBudgetExceeded, LivenessFailure):
            return "stalled"

    def experiment():
        rows = []
        for protocol in ("bracha", "mmr14"):
            outcomes = [attempt(protocol, seed) for seed in range(TRIALS)]
            rows.append([
                protocol, TRIALS,
                outcomes.count("decided"), outcomes.count("stalled"),
            ])
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "f2_mmr14_contrast",
        format_table(
            ["protocol", "trials", f"decided ≤ {budget} steps", "stalled"],
            rows,
            title="F2b. Coin-rushing adversary, fixed step budget: "
                  "Bracha (validated) vs MMR-14 (fair-scheduler live)",
        ),
    )
    bracha_row = next(row for row in rows if row[0] == "bracha")
    mmr_row = next(row for row in rows if row[0] == "mmr14")
    assert bracha_row[2] >= mmr_row[2], (
        "Bracha must decide at least as often as MMR-14 under the attack"
    )
