"""F3 — Baseline comparison: Bracha vs Ben-Or (1983) vs MMR-14 (2014).

Positions the paper in its lineage, measured on one simulator:

* **Resilience** — Ben-Or's Byzantine envelope is t < n/5; Bracha and
  MMR-14 reach the optimal t < n/3 (T5 demonstrates the gap under
  attack; here all runs stay within each protocol's envelope).
* **Cost** — Bracha pays O(n³) messages/round for full broadcast
  validation; Ben-Or and MMR-14 pay O(n²).
* **Rounds** — with a common coin, Bracha and MMR-14 decide in O(1)
  expected rounds; Ben-Or/Bracha with local coins depend on luck.
"""

from conftest import run_once

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.baselines import run_protocol

TRIALS = 6


def test_f3_protocol_comparison(benchmark, table_sink, bench_sink):
    configs = [
        ("bracha", "local"), ("bracha", "dealer"),
        ("benor", "local"), ("benor", "dealer"),
        ("mmr14", "dealer"),
    ]
    sizes = [4, 7, 10]

    def experiment():
        rows = []
        for protocol, coin in configs:
            for n in sizes:
                rounds, messages, steps = [], [], []
                for seed in range(TRIALS):
                    result = run_protocol(
                        protocol, n=n, coin=coin,
                        proposals=[pid % 2 for pid in range(n)],
                        seed=seed * 17 + n, max_steps=5_000_000,
                    )
                    rounds.append(result.decision_round())
                    messages.append(result.messages_sent)
                    steps.append(result.steps)
                rows.append([
                    protocol, coin, n,
                    summarize(rounds).mean,
                    summarize(messages).mean,
                    summarize(messages).mean / max(1.0, summarize(rounds).mean),
                ])
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "f3_baselines",
        format_table(
            ["protocol", "coin", "n", "mean rounds", "mean msgs", "msgs/round"],
            rows,
            title="F3. Protocol lineage on one simulator "
                  "(fault-free split inputs; all runs within each envelope)",
        ),
    )
    by_key = {(row[0], row[1], row[2]): row for row in rows}
    # Bracha's per-round cost dominates the O(n²) protocols at n=10.
    assert by_key[("bracha", "dealer", 10)][5] > by_key[("mmr14", "dealer", 10)][5]
    assert by_key[("bracha", "local", 10)][5] > by_key[("benor", "local", 10)][5]
    # Common-coin Bracha decides in few rounds at every n.
    assert all(by_key[("bracha", "dealer", n)][3] <= 4 for n in sizes)
    bench_sink(
        "f3_baselines",
        {
            "bracha_msgs_per_round_n10": round(
                by_key[("bracha", "dealer", 10)][5], 1
            ),
            "mmr14_msgs_per_round_n10": round(
                by_key[("mmr14", "dealer", 10)][5], 1
            ),
        },
        meta={"sizes": sizes, "trials": TRIALS},
    )


def test_f3_fault_tolerance_within_envelopes(benchmark, table_sink):
    """Same comparison with each protocol's maximum tolerable silent
    faults injected: Ben-Or needs n=6 for one Byzantine fault; Bracha and
    MMR-14 handle ⌊(n−1)/3⌋ at n=7; crash-only Ben-Or rides t < n/2."""
    configs = [
        ("bracha", 7, 2, {5: "silent", 6: "silent"}),
        ("mmr14", 7, 2, {5: "silent", 6: "silent"}),
        ("benor", 6, 1, {5: "silent"}),
        # The benign-fault anchor: crash-only Ben-Or tolerates t < n/2.
        ("benor-crash", 5, 2, {3: "silent", 4: "silent"}),
    ]

    def experiment():
        rows = []
        for protocol, n, t, faults in configs:
            decided = 0
            rounds = []
            for seed in range(TRIALS):
                result = run_protocol(
                    protocol, n=n, t=t,
                    proposals=[pid % 2 for pid in range(n)],
                    faults=faults, seed=seed * 31, max_steps=5_000_000,
                )
                decided += int(result.all_decided)
                rounds.append(result.decision_round())
            rows.append([protocol, n, t, len(faults), TRIALS, decided,
                         summarize(rounds).mean])
        return rows

    rows = run_once(benchmark, experiment)
    table_sink(
        "f3_fault_envelopes",
        format_table(
            ["protocol", "n", "t", "faults", "trials", "all decided", "mean rounds"],
            rows,
            title="F3b. Maximum tolerable silent faults per protocol envelope",
        ),
    )
    assert all(row[5] == TRIALS for row in rows)
