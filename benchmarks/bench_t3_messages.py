"""T3 — Message complexity: O(n³) per consensus round.

Paper claim: each round runs n reliable broadcasts per step (3 steps),
each costing O(n²) — so messages *per round* scale as n³.  Regenerates:
per-round message cost vs n with the fitted exponent.

(The later MMR-14 line in F3 shows the descendants cutting this to n²;
Bracha's n³ is the price of full per-sender broadcast validation.)
"""

from conftest import run_once

from repro import run_consensus
from repro.analysis.stats import fit_power_law, summarize
from repro.analysis.tables import format_table

TRIALS = 5


def test_t3_messages_per_round(benchmark, table_sink, bench_sink):
    sizes = [4, 7, 10, 13]

    def experiment():
        rows = []
        for n in sizes:
            per_round = []
            for seed in range(TRIALS):
                result = run_consensus(
                    n=n, proposals=[pid % 2 for pid in range(n)],
                    seed=seed * 13 + n, max_steps=4_000_000,
                )
                # Count only consensus-layer RBC traffic; decide/coin
                # messages are O(n²) and excluded from the model.
                rbc_messages = result.meta["messages_by_kind"].get("rbc/RbcMessage", 0)
                per_round.append(rbc_messages / max(1, result.rounds))
            rows.append([n, summarize(per_round).mean, 3 * n * (n + 2 * n * n)])
        return rows

    rows = run_once(benchmark, experiment)
    ns = [row[0] for row in rows]
    measured = [row[1] for row in rows]
    exponent, _c = fit_power_law(ns, measured)
    table_sink(
        "t3_messages_per_round",
        format_table(
            ["n", "RBC msgs/round (measured)", "3n(n+2n^2) (model ceiling)"],
            rows,
            title=f"T3. Per-round message cost (fitted exponent {exponent:.3f}, theory 3)",
        ),
    )
    assert 2.6 < exponent < 3.3
    # measured stays below the ceiling (not every instance completes all waves)
    assert all(row[1] <= row[2] for row in rows)
    bench_sink(
        "t3_messages_per_round",
        {"fitted_exponent": round(exponent, 3),
         "msgs_per_round_n13": round(rows[-1][1], 1)},
        meta={"sizes": sizes, "trials": TRIALS},
    )
